//! The experiment driver: regenerates every table and figure of the CLITE
//! paper's evaluation on the simulator substrate.
//!
//! ```text
//! experiments all                 # everything, quick grids
//! experiments fig7 fig12          # selected experiments
//! experiments all --full          # paper-sized grids (slower)
//! experiments all --seed 7        # re-seed every stochastic component
//! experiments --list              # list experiment ids
//! experiments fig7 --telemetry-out events.jsonl   # stream run telemetry
//! experiments fig16 --store obs.clite   # persist observations, warm-start re-searches
//! experiments loadtest                  # latency percentiles under load traces
//!                                       # (writes results/reports/loadtest.json,
//!                                       #  or $CLITE_LOAD_REPORT when set)
//! ```

use std::process::ExitCode;
use std::time::Instant;

use clite_bench::experiments::{registry, run_by_id};
use clite_bench::export::save_reports;
use clite_bench::runner::{ambient_sink, install_jsonl_sink};
use clite_bench::ExpOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut save_dir: Option<std::path::PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => opts.quick = false,
            "--quick" => opts.quick = true,
            "--list" => list = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => opts.seed = s,
                None => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--save" => match it.next() {
                Some(d) => save_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    eprintln!("--save requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--store" => match it.next() {
                Some(p) => opts.store = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--store requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--placement" => match it.next().as_deref() {
                Some("heuristic") => opts.learned_placement = false,
                Some("learned") => opts.learned_placement = true,
                Some(other) => {
                    eprintln!("unknown placement '{other}' (expected 'heuristic' or 'learned')");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--placement requires 'heuristic' or 'learned'");
                    return ExitCode::FAILURE;
                }
            },
            "--model" => match it.next() {
                Some(p) => opts.model = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--model requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry-out" => match it.next() {
                Some(p) => {
                    if let Err(e) = install_jsonl_sink(&p) {
                        eprintln!("cannot open telemetry output {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => {
                    eprintln!("--telemetry-out requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_owned()),
        }
    }

    if list {
        for (id, _) in registry() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = registry().into_iter().map(|(id, _)| id.to_owned()).collect();
    }

    let mut reports = Vec::new();
    for id in &ids {
        let start = Instant::now();
        match run_by_id(id, &opts) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{id} took {:.1?}]", start.elapsed());
                reports.push(report);
            }
            None => {
                eprintln!("unknown experiment id: {id} (use --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = save_dir {
        if let Err(e) = save_reports(&dir, &reports) {
            eprintln!("failed to save reports to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[saved {} reports to {}]", reports.len(), dir.display());
    }
    if let Some(sink) = ambient_sink() {
        println!("metrics snapshot:\n\n{}", sink.metrics().to_prometheus());
        if let Err(e) = sink.flush() {
            eprintln!("warning: telemetry flush failed: {e}");
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: experiments <id>... | all [--full] [--seed N] [--save DIR] \
         [--telemetry-out PATH] [--store PATH] \
         [--placement heuristic|learned] [--model PATH] [--list]\n\
         ids: table1 table2 table3 fig1 fig2 fig6 fig7 fig8 fig9a fig9b fig10\n\
         \x20     fig11 fig12 fig13 fig14 fig15a fig15b fig16 summary ablations\n\
         \x20     frontier cluster chaos loadtest fleet placement par"
    );
}
