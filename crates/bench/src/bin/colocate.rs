//! `colocate` — the operator-facing CLI: run a co-location policy on an
//! ad-hoc job mix, sweep one job's load, or inspect QoS targets.
//!
//! ```text
//! colocate run memcached:40 img-dnn:30 streamcluster
//! colocate run --policy PARTIES memcached:40 img-dnn:30 streamcluster
//! colocate sweep --sweep memcached:10 masstree:30 img-dnn:30
//! colocate qos
//! ```

use std::path::Path;
use std::process::ExitCode;

use clite_bench::cli::{parse, usage, Command};
use clite_bench::loadrun::policy_vs_equal_share;
use clite_bench::mixes::Mix;
use clite_bench::render::{pct, Table};
use clite_bench::runner::{
    final_eval, run_clite_chaos, run_clite_with_store, run_policy, run_policy_with, PolicyKind,
};
use clite_load::{LoadReport, ScenarioReport};
use clite_policies::policy::PolicyOutcome;
use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use clite_store::{ObservationStore, SharedStore, StorePolicy};
use clite_telemetry::{JsonlRecorder, OverheadReport, Telemetry};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        Command::Help => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Command::Qos { workloads } => {
            let catalog = ResourceCatalog::testbed();
            let list = if workloads.is_empty() {
                WorkloadId::LATENCY_CRITICAL.to_vec()
            } else {
                workloads
            };
            let mut t = Table::new(vec![
                "workload",
                "class",
                "QoS target (us)",
                "max load (QPS)",
                "unloaded p95 (us)",
            ]);
            for w in list {
                match w.class() {
                    JobClass::LatencyCritical => {
                        let q = QosSpec::derive(w, &catalog);
                        t.row(vec![
                            w.name().to_owned(),
                            "LC".to_owned(),
                            format!("{:.0}", q.target_us),
                            format!("{:.0}", q.max_qps),
                            format!("{:.0}", q.unloaded_p95_us),
                        ]);
                    }
                    JobClass::Background => {
                        t.row(vec![
                            w.name().to_owned(),
                            "BG".to_owned(),
                            "-".to_owned(),
                            "-".to_owned(),
                            "-".to_owned(),
                        ]);
                    }
                }
            }
            println!("{}", t.render());
            ExitCode::SUCCESS
        }
        Command::Run { policy, seed, telemetry_out, store, faults, jobs } => {
            let mix = mix_from(jobs);
            if faults.is_some() && policy != PolicyKind::Clite {
                eprintln!("error: --faults only supports --policy CLITE (got {})", policy.name());
                return ExitCode::FAILURE;
            }
            println!("mix: {}  policy: {}  seed: {seed}\n", mix.name, policy.name());
            let recorder = match telemetry_out.as_deref().map(JsonlRecorder::create) {
                None => None,
                Some(Ok(r)) => Some(r),
                Some(Err(e)) => {
                    eprintln!("error: cannot open telemetry output: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let shared = match open_store(policy, store.as_deref(), &recorder) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(spec) = faults {
                return run_chaos(
                    &mix,
                    seed,
                    &spec,
                    shared.as_ref(),
                    &recorder,
                    telemetry_out.as_deref(),
                );
            }
            let mut overhead: Option<OverheadReport> = None;
            let run = |telemetry: &Telemetry<'_>| match &shared {
                Some(s) => run_clite_with_store(&mix, seed, s, telemetry),
                None => run_policy_with(policy, &mix, seed, telemetry),
            };
            let outcome = match &recorder {
                Some(sink) => {
                    let telemetry = Telemetry::new(sink);
                    let outcome = run(&telemetry);
                    overhead = Some(telemetry.report());
                    outcome
                }
                None => run(&Telemetry::disabled()),
            };
            print_result(&mix, &outcome, seed, 0);
            if let Some(s) = &shared {
                report_store(s);
            }
            if let (Some(sink), Some(report)) = (&recorder, &overhead) {
                let path = telemetry_out.as_deref().expect("recorder implies a path");
                print_telemetry(sink, Some(report), path);
            }
            ExitCode::SUCCESS
        }
        Command::Load { policy, config, report, telemetry_out, jobs } => {
            let mix = mix_from(jobs);
            println!(
                "mix: {}  policy: {} vs equal-share  trace: {}  seed: {}\n\
                 windows: {}  queries/window: {}  threads: {}\n",
                mix.name,
                policy.name(),
                config.trace,
                config.seed,
                config.windows,
                config.queries_per_window,
                config.threads
            );
            let recorder = match telemetry_out.as_deref().map(JsonlRecorder::create) {
                None => None,
                Some(Ok(r)) => Some(r),
                Some(Err(e)) => {
                    eprintln!("error: cannot open telemetry output: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let run = |telemetry: &Telemetry<'_>| {
                policy_vs_equal_share(policy, &mix, config.trace, &config, telemetry)
            };
            let mut overhead: Option<OverheadReport> = None;
            let scenarios = match &recorder {
                Some(sink) => {
                    let telemetry = Telemetry::new(sink);
                    let out = run(&telemetry);
                    overhead = Some(telemetry.report());
                    out
                }
                None => run(&Telemetry::disabled()),
            };
            print_load_tails(&scenarios);
            if let Some(path) = &report {
                let mut load_report = LoadReport::new(config.seed);
                for s in &scenarios {
                    load_report.push(s.clone());
                }
                if let Err(e) = load_report.save(path) {
                    eprintln!("error: cannot write load report {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("load report written to {}", path.display());
            }
            if let (Some(sink), Some(report)) = (&recorder, &overhead) {
                let path = telemetry_out.as_deref().expect("recorder implies a path");
                print_telemetry(sink, Some(report), path);
            }
            ExitCode::SUCCESS
        }
        Command::Fleet {
            nodes,
            events,
            seed,
            shards,
            admission,
            epoch,
            probe_limit,
            faults,
            store,
            placement,
            model,
            journal,
            recover,
            kill_after,
        } => run_fleet(
            nodes,
            events,
            seed,
            shards,
            admission,
            epoch,
            probe_limit,
            faults,
            store,
            placement,
            model,
            journal,
            recover,
            kill_after,
        ),
        Command::Train { out, seed, epochs, groups } => run_train(&out, seed, epochs, groups),
        Command::Sweep { policy, seed, telemetry_out, store, swept, fixed } => {
            let recorder = match telemetry_out.as_deref().map(JsonlRecorder::create) {
                None => None,
                Some(Ok(r)) => Some(r),
                Some(Err(e)) => {
                    eprintln!("error: cannot open telemetry output: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let shared = match open_store(policy, store.as_deref(), &recorder) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut t = Table::new(vec!["swept load", "QoS", "score", "samples", "BG perf"]);
            for step in 1..=9 {
                let load = f64::from(step) / 10.0;
                let mut jobs = vec![JobSpec::latency_critical(swept.workload, load)];
                jobs.extend(fixed.iter().cloned());
                let mix = mix_from(jobs);
                let step_seed = seed.wrapping_add(step as u64);
                let outcome = match (&shared, &recorder) {
                    (Some(s), Some(sink)) => {
                        run_clite_with_store(&mix, step_seed, s, &Telemetry::new(sink))
                    }
                    (Some(s), None) => {
                        run_clite_with_store(&mix, step_seed, s, &Telemetry::disabled())
                    }
                    (None, Some(sink)) => {
                        run_policy_with(policy, &mix, step_seed, &Telemetry::new(sink))
                    }
                    (None, None) => run_policy(policy, &mix, step_seed),
                };
                let obs = final_eval(&mix, &outcome, seed.wrapping_add(step as u64));
                t.row(vec![
                    pct(load),
                    if obs.all_qos_met() { "met".to_owned() } else { "X".to_owned() },
                    format!("{:.4}", outcome.best_score),
                    outcome.samples_used().to_string(),
                    obs.mean_bg_perf().map_or("-".to_owned(), pct),
                ]);
            }
            println!(
                "sweeping {} with {} fixed jobs, policy {}\n\n{}",
                swept.workload.name(),
                fixed.len(),
                policy.name(),
                t.render()
            );
            if let Some(s) = &shared {
                report_store(s);
            }
            if let Some(sink) = &recorder {
                let path = telemetry_out.as_deref().expect("recorder implies a path");
                print_telemetry(sink, None, path);
            }
            ExitCode::SUCCESS
        }
    }
}

/// The `colocate fleet` entry point: generate a deterministic event
/// trace, stream it through the fleet service over a sharded observation
/// store, and print the counters, fleet statistics, and per-shard store
/// occupancy. Ends in a `fleet: completed ...` marker line (the CI smoke
/// test greps for it). With `--journal DIR` the run is durable (WAL +
/// checkpoints); `--kill-after K` dies right after journaling event K and
/// `--recover` resumes, printing a `recovery: replayed ...` marker.
#[allow(clippy::too_many_arguments)]
fn run_fleet(
    nodes: usize,
    events: usize,
    seed: u64,
    shards: usize,
    admission: clite_cluster::scheduler::AdmissionMode,
    epoch: u64,
    probe_limit: usize,
    faults: Option<clite_faults::FaultSpec>,
    store_path: Option<std::path::PathBuf>,
    placement: clite_bench::cli::PlacementChoice,
    model_path: Option<std::path::PathBuf>,
    journal_dir: Option<std::path::PathBuf>,
    recover: bool,
    kill_after: Option<u64>,
) -> ExitCode {
    use clite_bench::cli::PlacementChoice;
    use clite_cluster::fleet::{FleetConfig, FleetService};
    use clite_cluster::recovery::{
        CrashPlan, CrashPoint, DurableConfig, DurableFleet, DurableOutcome,
    };
    use clite_cluster::trace::{generate, TraceConfig};
    use clite_faults::{FaultSpec, FaultyFactory};
    use clite_sim::testbed::ServerFactory;
    use clite_store::{ShardPolicy, ShardedStore};

    let shard_policy = ShardPolicy::with_shards(shards);
    let store = match &store_path {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: cannot create store directory {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
            match ShardedStore::open(path, shard_policy) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot open sharded store {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => ShardedStore::in_memory(shard_policy),
    };
    let mut config = match placement {
        PlacementChoice::Heuristic => FleetConfig::mean_field(epoch, probe_limit),
        PlacementChoice::Learned => {
            let model = match &model_path {
                Some(path) => {
                    let (model, err) = clite_learn::load_or_zeroed(path);
                    if let Some(e) = err {
                        eprintln!(
                            "warning: {e}: serving the zero model (heuristic-fallback order) \
                             instead of {}",
                            path.display()
                        );
                    } else {
                        println!(
                            "model: loaded {} (feature schema v{}, {} epochs, train loss {:.4})",
                            path.display(),
                            model.feature_version,
                            model.epochs,
                            model.train_loss
                        );
                    }
                    model
                }
                None => clite_learn::RankingModel::zeroed(),
            };
            FleetConfig::mean_field_learned(epoch, probe_limit, std::sync::Arc::new(model))
        }
    };
    config.scheduler.admission = admission;
    config.epoch_ticks = epoch;
    let fault_spec = faults.unwrap_or_else(FaultSpec::none);
    let factory = FaultyFactory::new(ServerFactory, fault_spec.clone());
    let trace = generate(&TraceConfig { events, ..TraceConfig::default() }, seed);
    println!(
        "fleet: {nodes} nodes, {events} events, seed {seed}, {shards} shards, {} admission, epoch {epoch}, probe limit {probe_limit}, {} placement\n",
        match admission {
            clite_cluster::scheduler::AdmissionMode::Serial => "serial",
            clite_cluster::scheduler::AdmissionMode::Threaded => "threaded",
        },
        match placement {
            PlacementChoice::Heuristic => "heuristic",
            PlacementChoice::Learned => "learned",
        }
    );
    let start = std::time::Instant::now();
    let run = match &journal_dir {
        Some(dir) => {
            let durable = DurableConfig::default();
            let mut fleet = if recover {
                match DurableFleet::recover(
                    nodes,
                    config,
                    seed,
                    factory,
                    dir,
                    durable,
                    Some(store.clone().into()),
                    &Telemetry::disabled(),
                ) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("error: recovery from {} failed: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match DurableFleet::create(nodes, config, seed, factory, dir, durable) {
                    Ok(f) => f.with_store(store.clone()),
                    Err(e) => {
                        eprintln!("error: cannot open journal {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                }
            };
            if let Some(info) = fleet.recovery_info() {
                println!(
                    "recovery: replayed {} events from checkpoint seq {}{}",
                    info.replayed,
                    info.checkpoint_seqno,
                    if info.journal_damaged { " (journal tail repaired)" } else { "" }
                );
            }
            let plan = kill_after.map(|k| CrashPlan { after_event: k, point: CrashPoint::Applied });
            match fleet.run(&trace, plan.as_ref(), &Telemetry::disabled()) {
                Ok(DurableOutcome::Completed(r)) => r,
                Ok(DurableOutcome::Killed { applied }) => {
                    println!(
                        "fleet: killed after journaling event {} ({applied} applied); resume \
                         with --journal {} --recover",
                        kill_after.unwrap_or(applied),
                        dir.display()
                    );
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("error: durable fleet loop failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let mut fleet = match FleetService::with_factory(nodes, config, seed, factory) {
                Ok(f) => f.with_store(store.clone()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fleet.run(&trace, &Telemetry::disabled()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: fleet loop failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let wall = start.elapsed();

    let c = &run.counters;
    let mut t = Table::new(vec![
        "events",
        "arrivals",
        "placed",
        "shed",
        "departed",
        "shifted",
        "stale",
        "onboarded",
        "epoch solves",
    ]);
    t.row(vec![
        trace.len().to_string(),
        c.arrivals.to_string(),
        c.placed.to_string(),
        c.arrivals_shed.to_string(),
        c.departures.to_string(),
        c.load_shifts.to_string(),
        c.stale_events.to_string(),
        c.nodes_onboarded.to_string(),
        c.epoch_solves.to_string(),
    ]);
    println!("{}", t.render());

    let stats = &run.stats;
    let qos_ok = stats.nodes.iter().filter(|n| n.alive && n.qos_met).count();
    let alive = stats.nodes.len() - stats.dead_nodes;
    println!(
        "fleet state: {} nodes ({alive} alive, {} dead, {} empty), {} live jobs, admission rate {}, QoS ok on {qos_ok}/{alive} alive nodes",
        stats.nodes.len(),
        stats.dead_nodes,
        stats.empty_nodes,
        stats.placed,
        pct(stats.admission_rate()),
    );
    let store_stats = store.stats();
    println!(
        "store: {} shards, {} mixes, {} records, {} appends, {} hits / {} misses, {} lock waits, {} compactions",
        store.shard_count(),
        store.mix_count(),
        store.record_count(),
        store_stats.appends,
        store_stats.hits,
        store_stats.misses,
        store_stats.lock_waits,
        store_stats.compactions,
    );
    if store_path.is_some() {
        if let Err(e) = store.compact_pending() {
            eprintln!("warning: shutdown compaction failed: {e}");
        }
    }
    println!(
        "fleet: completed {} events over {} nodes in {:.1} ms ({:.0} us/arrival) without panic",
        trace.len(),
        stats.nodes.len(),
        wall.as_secs_f64() * 1e3,
        wall.as_secs_f64() * 1e6 / (c.arrivals.max(1)) as f64,
    );
    ExitCode::SUCCESS
}

/// The `colocate train` entry point: fit the placement ranking model over
/// deterministic simulator rollouts, save it at `out`, and verify the
/// round trip. Ends in a `train: completed ...` marker line (the CI smoke
/// test greps for it).
fn run_train(out: &Path, seed: u64, epochs: u32, groups: usize) -> ExitCode {
    use clite_learn::train::TrainConfig;

    let config = TrainConfig { groups, epochs, seed, ..TrainConfig::smoke(seed) };
    println!(
        "train: {groups} rollout groups x {} candidates, {} label windows, {epochs} epochs, seed {seed}",
        config.candidates, config.label_windows
    );
    let start = std::time::Instant::now();
    let model = clite_learn::train::train(&config, &Telemetry::disabled());
    let wall = start.elapsed();
    println!(
        "train: final pairwise loss {:.4} (untrained level {:.4}) in {:.1} ms",
        model.train_loss,
        std::f64::consts::LN_2,
        wall.as_secs_f64() * 1e3
    );
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create model directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = clite_learn::save(out, &model) {
        eprintln!("error: cannot write model {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    match clite_learn::load(out) {
        Ok(reloaded) if reloaded == model => {}
        Ok(_) => {
            eprintln!("error: model round trip drifted at {}", out.display());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: saved model does not load back: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "train: completed — model saved to {} (feature schema v{}, round trip verified)",
        out.display(),
        model.feature_version
    );
    ExitCode::SUCCESS
}

/// Opens the observation store at `path` (when requested). The store only
/// makes sense for CLITE — it feeds `BoEngine` warm starts — so any other
/// policy is rejected up front. Reopen-time recovery is observed: a torn
/// or corrupt tail emits a `store_recovered` telemetry event (when a
/// recorder is installed) and a stderr warning.
fn open_store(
    policy: PolicyKind,
    path: Option<&Path>,
    recorder: &Option<JsonlRecorder>,
) -> Result<Option<SharedStore>, String> {
    let Some(path) = path else { return Ok(None) };
    if policy != PolicyKind::Clite {
        return Err(format!("--store only supports --policy CLITE (got {})", policy.name()));
    }
    let telemetry = match recorder {
        Some(sink) => Telemetry::new(sink),
        None => Telemetry::disabled(),
    };
    let store = ObservationStore::open_observed(path, StorePolicy::default(), &telemetry)
        .map_err(|e| format!("cannot open observation store {}: {e}", path.display()))?;
    let stats = store.stats();
    if stats.dropped_bytes > 0 || stats.undecodable_records > 0 {
        eprintln!(
            "warning: store {} had a corrupt tail; recovered {} records, dropped {} bytes, {} undecodable",
            path.display(),
            stats.recovered_records,
            stats.dropped_bytes,
            stats.undecodable_records
        );
    }
    Ok(Some(store.into_shared()))
}

/// Prints the run summary line and per-job partition table for a
/// completed search. `extra_windows` adds fault-retry/quarantine windows
/// (chaos mode) on top of the outcome's own sample count.
fn print_result(mix: &Mix, outcome: &PolicyOutcome, seed: u64, extra_windows: usize) {
    let obs = final_eval(mix, outcome, seed);
    println!(
        "samples: {}   score: {:.4}   QoS: {}\n",
        outcome.samples_used() + extra_windows,
        outcome.best_score,
        if obs.all_qos_met() { "met" } else { "VIOLATED" }
    );
    let mut t = Table::new(vec![
        "job", "class", "cores", "L3 ways", "mem b/w", "mem cap", "disk b/w", "outcome",
    ]);
    for (j, job) in obs.jobs.iter().enumerate() {
        let p = &outcome.best_partition;
        let outcome_cell = match job.qos_met {
            Some(true) => format!(
                "p95 {:.0}us <= {:.0}us",
                job.latency_p95_us,
                job.qos_target_us.unwrap_or(f64::NAN)
            ),
            Some(false) => format!(
                "p95 {:.0}us > {:.0}us",
                job.latency_p95_us,
                job.qos_target_us.unwrap_or(f64::NAN)
            ),
            None => format!("throughput {}", pct(job.normalized_perf)),
        };
        t.row(vec![
            job.workload.name().to_owned(),
            job.class.to_string(),
            p.units(j, ResourceKind::Cores).to_string(),
            p.units(j, ResourceKind::LlcWays).to_string(),
            p.units(j, ResourceKind::MemBandwidth).to_string(),
            p.units(j, ResourceKind::MemCapacity).to_string(),
            p.units(j, ResourceKind::DiskBandwidth).to_string(),
            outcome_cell,
        ]);
    }
    println!("{}", t.render());
}

/// Prints the per-job latency-percentile table for a set of load
/// scenarios (policy rows first, then the baseline), followed by the
/// worst LC job's tail CCDF so operators can see the whole curve, not
/// just the gated percentiles.
fn print_load_tails(scenarios: &[ScenarioReport]) {
    let mut t = Table::new(vec![
        "policy",
        "job",
        "class",
        "queries",
        "p50 (us)",
        "p90 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "QoS viol",
    ]);
    for s in scenarios {
        for j in &s.jobs {
            t.row(vec![
                s.policy.clone(),
                j.job.clone(),
                j.class.clone(),
                j.tail.count.to_string(),
                j.tail.p50_us.to_string(),
                j.tail.p90_us.to_string(),
                j.tail.p99_us.to_string(),
                j.tail.p999_us.to_string(),
                j.tail.qos_target_us.map_or("-".to_owned(), |_| pct(j.tail.violation_fraction)),
            ]);
        }
    }
    println!("{}", t.render());
    // The CCDF of the worst LC tail: the scenario/job with the highest
    // p99 across everything measured.
    let worst = scenarios
        .iter()
        .flat_map(|s| s.jobs.iter().map(move |j| (s, j)))
        .filter(|(_, j)| j.class == "LC")
        .max_by_key(|(_, j)| j.tail.p99_us);
    if let Some((s, j)) = worst {
        println!("worst LC tail CCDF — {} under {} ({}):", j.job, s.policy, s.trace);
        for p in &j.tail.ccdf {
            println!("  P(latency > {:>8} us) = {:.4}", p.latency_us, p.fraction);
        }
        println!();
    }
}

/// The chaos-mode run path: hardened CLITE behind a fault-injecting
/// testbed. A completed search prints the usual table plus a fault
/// summary; an unrecoverable fault prints the engaged fallback instead.
/// Both end in a `chaos: ... without panic` marker line (the CI smoke
/// test greps for it) and exit 0 — injected faults are never failures.
fn run_chaos(
    mix: &Mix,
    seed: u64,
    spec: &clite_faults::FaultSpec,
    shared: Option<&SharedStore>,
    recorder: &Option<JsonlRecorder>,
    telemetry_path: Option<&Path>,
) -> ExitCode {
    let mut overhead: Option<OverheadReport> = None;
    let chaos = match recorder {
        Some(sink) => {
            let telemetry = Telemetry::new(sink);
            let out = run_clite_chaos(mix, seed, spec, shared, &telemetry);
            overhead = Some(telemetry.report());
            out
        }
        None => run_clite_chaos(mix, seed, spec, shared, &Telemetry::disabled()),
    };
    let f = &chaos.faults;
    println!(
        "chaos: injected {} faults (spikes {}, dropped {}, stuck {}, enforce {}, crashes {}); quarantined {} samples\n",
        f.total(),
        f.spikes,
        f.dropped,
        f.stuck,
        f.enforce_faults,
        f.crashes,
        chaos.quarantined
    );
    match (&chaos.outcome, &chaos.fallback) {
        (Some(outcome), _) => {
            print_result(mix, outcome, seed, chaos.quarantined);
            println!("chaos: completed without panic");
        }
        (None, Some((fallback, reason))) => {
            let obs = mix.server(seed).ground_truth(fallback);
            println!(
                "fallback engaged: {reason}\nfallback partition QoS (ground truth): {}\n",
                if obs.all_qos_met() { "met" } else { "VIOLATED" }
            );
            println!("chaos: degraded gracefully without panic");
        }
        (None, None) => unreachable!("chaos run produced neither an outcome nor a fallback"),
    }
    if let Some(s) = shared {
        report_store(s);
    }
    if let (Some(sink), Some(report)) = (recorder, &overhead) {
        let path = telemetry_path.expect("recorder implies a path");
        print_telemetry(sink, Some(report), path);
    }
    ExitCode::SUCCESS
}

/// Prints the one-line store summary the CI smoke test greps for:
/// `store: hit` when at least one search warm-started from stored
/// samples, `store: miss` when every lookup came up cold.
fn report_store(store: &SharedStore) {
    let guard = store.lock().expect("observation store lock");
    let stats = guard.stats();
    let detail = format!(
        "{} mixes, {} records kept, {} samples appended",
        guard.mix_count(),
        guard.record_count(),
        stats.appends
    );
    if stats.hits > 0 {
        println!("store: hit (warm-started from stored samples; {detail})");
    } else {
        println!("store: miss (cold search; {detail})");
    }
}

/// Prints the per-run overhead report (when a single run produced one) and
/// the Prometheus metrics snapshot, then flushes the JSONL sink.
fn print_telemetry(sink: &JsonlRecorder, overhead: Option<&OverheadReport>, path: &Path) {
    if let Some(report) = overhead {
        let mut t = Table::new(vec!["phase", "total (ms)", "sections", "% of wall"]);
        for cost in &report.phases {
            t.row(vec![
                cost.phase.name().to_owned(),
                format!("{:.3}", cost.total_seconds * 1e3),
                cost.count.to_string(),
                format!("{:.1}%", 100.0 * cost.total_seconds / report.wall_seconds),
            ]);
        }
        println!(
            "search-phase overhead (Fig. 15b): wall {:.3} ms, profiled {:.3} ms, coverage {:.1}%\n\n{}",
            report.wall_seconds * 1e3,
            report.profiled_seconds() * 1e3,
            100.0 * report.coverage,
            t.render()
        );
    }
    println!("metrics snapshot:\n\n{}", sink.metrics().to_prometheus());
    if let Err(e) = sink.flush() {
        eprintln!("warning: telemetry flush failed: {e}");
    } else {
        println!("telemetry events written to {}", path.display());
    }
}

fn mix_from(jobs: Vec<JobSpec>) -> Mix {
    let lc: Vec<(WorkloadId, f64)> = jobs
        .iter()
        .filter(|j| j.class() == JobClass::LatencyCritical)
        .map(|j| (j.workload, j.load.at(0.0)))
        .collect();
    let bg: Vec<WorkloadId> =
        jobs.iter().filter(|j| j.class() == JobClass::Background).map(|j| j.workload).collect();
    Mix::new(&lc, &bg)
}
