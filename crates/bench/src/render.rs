//! ASCII rendering of tables, heatmaps, and series.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a heatmap of optional values (e.g. max supported load; `None`
/// renders as the paper's `X` = co-location not possible).
///
/// `values[y][x]` is displayed with `y` increasing downward; axis tick
/// labels are printed on both axes.
#[must_use]
pub fn heatmap(
    x_label: &str,
    y_label: &str,
    x_ticks: &[String],
    y_ticks: &[String],
    values: &[Vec<Option<f64>>],
    fmt: impl Fn(f64) -> String,
) -> String {
    let cell_w = values
        .iter()
        .flatten()
        .map(|v| v.map_or(1, |x| fmt(x).len()))
        .chain(x_ticks.iter().map(String::len))
        .max()
        .unwrap_or(3)
        .max(3);
    let ylab_w = y_ticks.iter().map(String::len).max().unwrap_or(2).max(y_label.len());

    let mut out = String::new();
    out.push_str(&format!("{:>ylab_w$} \\ {x_label}\n", y_label));
    out.push_str(&format!("{:>ylab_w$} |", ""));
    for t in x_ticks {
        out.push_str(&format!(" {t:>cell_w$}"));
    }
    out.push('\n');
    out.push_str(&format!(
        "{}-+-{}\n",
        "-".repeat(ylab_w),
        "-".repeat((cell_w + 1) * x_ticks.len())
    ));
    for (yi, row) in values.iter().enumerate() {
        let unlabeled = String::new();
        let ytick = y_ticks.get(yi).unwrap_or(&unlabeled);
        out.push_str(&format!("{ytick:>ylab_w$} |"));
        for v in row {
            match v {
                Some(x) => out.push_str(&format!(" {:>cell_w$}", fmt(*x))),
                None => out.push_str(&format!(" {:>cell_w$}", "X")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a boolean region map (`#` inside, `.` outside), e.g. QoS-safe
/// regions (paper Fig. 1).
#[must_use]
pub fn region(x_label: &str, y_label: &str, grid: &[Vec<bool>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("rows: {y_label} (top = max)   cols: {x_label} (left = min)\n"));
    for row in grid {
        for &b in row {
            out.push(if b { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with no decimals (`0.42` → `"42%"`).
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct1(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["long-name", "2"]);
        let r = t.render();
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn heatmap_renders_x_for_none() {
        let h = heatmap(
            "load",
            "job",
            &["10".into(), "20".into()],
            &["a".into(), "b".into()],
            &[vec![Some(0.5), None], vec![None, Some(1.0)]],
            pct,
        );
        assert!(h.contains('X'));
        assert!(h.contains("50%"));
        assert!(h.contains("100%"));
    }

    #[test]
    fn region_shapes() {
        let r = region("cores", "ways", &[vec![true, false], vec![false, true]]);
        assert!(r.contains("#."));
        assert!(r.contains(".#"));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.42), "42%");
        assert_eq!(pct1(0.426), "42.6%");
    }
}
