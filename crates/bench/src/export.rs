//! Structured export of experiment artifacts: reports to text files,
//! policy outcomes and observations to JSON, tables to CSV.

use std::fs;
use std::io;
use std::path::Path;

use clite_policies::policy::PolicyOutcome;
use serde::Serialize;

use crate::Report;

/// Writes every report to `<dir>/<id>.txt` (creating the directory), and
/// an `index.txt` listing them.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_reports(dir: &Path, reports: &[Report]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut index = String::new();
    for r in reports {
        let path = dir.join(format!("{}.txt", r.id));
        fs::write(&path, format!("{r}"))?;
        index.push_str(&format!("{}\t{}\n", r.id, r.title));
    }
    fs::write(dir.join("index.txt"), index)
}

/// Serializes any `Serialize` value (policy outcomes, observations,
/// traces) to pretty JSON at `path`.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn save_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Flattens a policy outcome into per-sample CSV rows:
/// `index,score,qos_met,mean_bg_perf,mean_lc_perf`.
#[must_use]
pub fn outcome_to_csv(outcome: &PolicyOutcome) -> String {
    let mut out = String::from("index,score,qos_met,mean_bg_perf,mean_lc_perf\n");
    for s in &outcome.samples {
        out.push_str(&format!(
            "{},{:.6},{},{},{}\n",
            s.index,
            s.score,
            s.observation.all_qos_met(),
            s.observation.mean_bg_perf().map_or(String::new(), |v| format!("{v:.6}")),
            s.observation.mean_lc_perf().map_or(String::new(), |v| format!("{v:.6}")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::Mix;
    use crate::runner::{run_policy, PolicyKind};
    use clite_sim::workload::WorkloadId;

    fn outcome() -> PolicyOutcome {
        let mix = Mix::new(&[(WorkloadId::Memcached, 0.2)], &[WorkloadId::Swaptions]);
        run_policy(PolicyKind::Parties, &mix, 1)
    }

    #[test]
    fn csv_has_header_and_rows() {
        let o = outcome();
        let csv = outcome_to_csv(&o);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "index,score,qos_met,mean_bg_perf,mean_lc_perf");
        assert_eq!(lines.len(), o.samples_used() + 1);
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn json_roundtrips_outcome() {
        let dir = std::env::temp_dir().join("clite_export_test");
        let path = dir.join("outcome.json");
        let o = outcome();
        save_json(&path, &o).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"policy\": \"PARTIES\""));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reports_saved_with_index() {
        let dir = std::env::temp_dir().join("clite_reports_test");
        let reports = vec![
            Report { id: "table1", title: "t".into(), body: "b".into() },
            Report { id: "fig6", title: "f".into(), body: "g".into() },
        ];
        save_reports(&dir, &reports).unwrap();
        assert!(dir.join("table1.txt").exists());
        assert!(dir.join("fig6.txt").exists());
        let index = fs::read_to_string(dir.join("index.txt")).unwrap();
        assert!(index.contains("fig6"));
        fs::remove_dir_all(&dir).ok();
    }
}
