//! Acceptance checks for the load-harness pipeline: the loadtest grid
//! covers every (mix, trace, policy) cell with full per-job tails, and
//! CLITE's searched partition beats the equal-share baseline's p99 on
//! the congested 2-job mix.

use clite_bench::experiments::loadtest::run_grid;
use clite_bench::loadrun::EQUAL_SHARE;
use clite_bench::ExpOptions;
use clite_load::TraceKind;

#[test]
fn grid_covers_every_scenario_and_clite_beats_equal_share_when_congested() {
    let opts = ExpOptions { quick: true, seed: 42, ..ExpOptions::default() };
    let (report, body) = run_grid(&opts);

    // 2 mixes × 3 traces × 2 policies.
    assert_eq!(report.scenarios.len(), 12);
    let congested = &report.scenarios[0].mix;
    assert!(congested.contains("memcached@70%"), "{congested}");
    for trace in TraceKind::ALL {
        for mix in report
            .scenarios
            .iter()
            .map(|s| s.mix.clone())
            .collect::<std::collections::BTreeSet<_>>()
        {
            for policy in ["CLITE", EQUAL_SHARE] {
                let s = report
                    .scenario(&mix, trace.name(), policy)
                    .unwrap_or_else(|| panic!("missing scenario {mix} / {trace} / {policy}"));
                assert!(s.queries > 0);
                for j in &s.jobs {
                    assert!(j.tail.count > 0, "{mix}/{trace}/{policy}/{}", j.job);
                    assert!(j.tail.p50_us <= j.tail.p99_us);
                    assert!(j.tail.p99_us <= j.tail.p999_us);
                    assert!(!j.tail.ccdf.is_empty(), "tail CCDF must be populated");
                }
            }
        }
    }

    // The acceptance criterion: on the congested 2-job mix, CLITE's
    // searched partition must buy tail latency over equal-share for at
    // least one LC job under at least one trace.
    let mut clite_wins = false;
    for trace in TraceKind::ALL {
        let clite = report.scenario(congested, trace.name(), "CLITE").unwrap();
        let equal = report.scenario(congested, trace.name(), EQUAL_SHARE).unwrap();
        for (cj, ej) in clite.jobs.iter().zip(&equal.jobs) {
            if cj.class == "LC" && cj.tail.p99_us < ej.tail.p99_us {
                clite_wins = true;
            }
        }
    }
    assert!(clite_wins, "CLITE p99 never beat equal-share on the congested mix:\n{body}");

    assert!(body.contains("CLITE p99 vs equal-share"), "summary block missing");
}
