//! Per-figure benchmark targets: each measures the cost of one
//! representative cell/run of a paper experiment, so the full
//! `experiments` sweep time is predictable (`cells × cell cost`).

use criterion::{criterion_group, criterion_main, Criterion};

use clite_bench::experiments::{fig01, fig06, tables};
use clite_bench::mixes::{fig12_mix, fig15b_mix, fig7_mix};
use clite_bench::runner::{run_policy, PolicyKind};
use clite_bench::ExpOptions;

fn bench_policy_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_cell");
    g.sample_size(10);
    g.bench_function("fig7_cell_clite", |b| {
        let mix = fig7_mix(0.3, 0.3, 0.3);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_policy(PolicyKind::Clite, &mix, seed)
        })
    });
    g.bench_function("fig7_cell_parties", |b| {
        let mix = fig7_mix(0.3, 0.3, 0.3);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_policy(PolicyKind::Parties, &mix, seed)
        })
    });
    g.bench_function("fig12_cell_oracle", |b| {
        let mix = fig12_mix(0.5, 0.5);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_policy(PolicyKind::Oracle, &mix, seed)
        })
    });
    g.bench_function("fig15b_run_clite", |b| {
        let mix = fig15b_mix();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_policy(PolicyKind::Clite, &mix, seed)
        })
    });
    g.finish();
}

fn bench_cheap_figures(c: &mut Criterion) {
    let opts = ExpOptions::default();
    c.bench_function("fig1_full", |b| b.iter(|| fig01::run(&opts)));
    c.bench_function("fig6_full", |b| b.iter(|| fig06::run(&opts)));
    c.bench_function("tables_full", |b| {
        b.iter(|| (tables::table1(&opts), tables::table2(&opts), tables::table3(&opts)))
    });
}

criterion_group!(benches, bench_policy_cells, bench_cheap_figures);
criterion_main!(benches);
