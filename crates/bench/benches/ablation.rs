//! Ablation benchmarks: wall-clock cost of one CLITE run under each design
//! variant (kernel family, acquisition function, dropout). Complements the
//! quality-focused `experiments ablations` report with the time dimension.

use criterion::{criterion_group, criterion_main, Criterion};

use clite::config::CliteConfig;
use clite::controller::CliteController;
use clite_bench::mixes::fig15b_mix;
use clite_bo::acquisition::Acquisition;
use clite_bo::engine::BoConfig;
use clite_gp::kernel::KernelFamily;

fn run_with(config: CliteConfig, seed: u64) -> f64 {
    let mut server = fig15b_mix().server(seed);
    CliteController::new(config.with_seed(seed)).run(&mut server).expect("run succeeds").best_score
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("clite_run");
    g.sample_size(10);

    g.bench_function("kernel_matern52", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with(CliteConfig::default(), seed)
        })
    });
    g.bench_function("kernel_sqexp", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with(
                CliteConfig::default().with_bo(BoConfig {
                    kernel_family: KernelFamily::SquaredExponential,
                    ..BoConfig::default()
                }),
                seed,
            )
        })
    });
    g.bench_function("acquisition_pi", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with(
                CliteConfig::default().with_bo(BoConfig {
                    acquisition: Acquisition::ProbabilityOfImprovement { zeta: 0.01 },
                    ..BoConfig::default()
                }),
                seed,
            )
        })
    });
    g.bench_function("no_dropout", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with(CliteConfig::default().without_dropout(), seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
