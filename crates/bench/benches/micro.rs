//! Microbenchmarks for the building blocks on CLITE's critical path: the
//! per-iteration cost the paper reports as "less than 100 ms in most
//! cases" decomposes into GP fitting/prediction, acquisition evaluation,
//! acquisition maximization, score computation, and partition enforcement.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use clite::controller::CliteController;
use clite::score::score_value;
use clite_bo::acquisition::Acquisition;
use clite_bo::engine::{BoConfig, BoEngine};
use clite_bo::optimizer::{maximize_acquisition, EvalScratch, OptimizerConfig};
use clite_bo::space::SearchSpace;
use clite_gp::gp::{GaussianProcess, GpConfig};
use clite_gp::kernel::Kernel;
use clite_sim::alloc::Partition;
use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use clite_sim::testbed::{MemoizedTestbed, Testbed};
use clite_store::{MixSignature, ObservationStore};
use clite_telemetry::{Event, MemoryRecorder, Phase, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_data(n: usize, jobs: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> =
        (0..n).map(|_| space.encode(&space.random(&mut rng).unwrap())).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / x.len() as f64).collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let (xs, ys) = training_data(30, 4);
    let dims = xs[0].len(); // 4 jobs x NUM_RESOURCES
    c.bench_function("gp_fit_n30", |b| {
        b.iter(|| {
            GaussianProcess::fit(
                Kernel::matern52(0.04, 0.3),
                GpConfig::default(),
                black_box(xs.clone()),
                black_box(ys.clone()),
            )
            .unwrap()
        })
    });
    let gp =
        GaussianProcess::fit(Kernel::matern52(0.04, 0.3), GpConfig::default(), xs, ys).unwrap();
    let query = vec![0.3; dims];
    c.bench_function("gp_predict_n30", |b| b.iter(|| gp.predict(black_box(&query))));
}

fn bench_acquisition(c: &mut Criterion) {
    let acq = Acquisition::paper_default();
    c.bench_function("ei_eval", |b| {
        b.iter(|| acq.score(black_box(0.6), black_box(0.1), black_box(0.7)))
    });

    let (xs, ys) = training_data(30, 3);
    let gp =
        GaussianProcess::fit(Kernel::matern52(0.04, 0.3), GpConfig::default(), xs, ys).unwrap();
    let space = SearchSpace::new(ResourceCatalog::testbed(), 3).unwrap();
    c.bench_function("acquisition_maximize_3jobs", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                maximize_acquisition(
                    &space,
                    OptimizerConfig::default(),
                    |p: &Partition, scratch: &mut EvalScratch| {
                        space.encode_into(p, &mut scratch.features);
                        let (m, s) = gp.predict_std_into(&scratch.features, &mut scratch.gp);
                        acq.score(m, s, 0.7)
                    },
                    &[space.equal_share().unwrap()],
                    None,
                    &HashSet::new(),
                    &mut rng,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Deterministic synthetic objective for the end-to-end `suggest()`
/// benchmarks (the same family the engine tests climb).
fn suggest_objective(p: &Partition) -> f64 {
    let jobs = p.job_count();
    0.6 * p.fraction(0, ResourceKind::Cores) + 0.4 * p.fraction(jobs - 1, ResourceKind::LlcWays)
}

/// An engine driven through a real bootstrap + suggest/record loop until
/// it holds `n` observations. With the default `hyper_refresh_every = 5`
/// and the `jobs + 1` bootstrap, none of the benchmarked sizes lands on a
/// refresh round, so the cloned engine's next `suggest` measures the
/// steady-state fast path (cached rank-1-extended surrogate, visitor
/// climb).
fn prepared_engine(jobs: usize, n: usize) -> BoEngine {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
    let mut engine = BoEngine::new(space, BoConfig::default(), 11);
    for p in engine.bootstrap_samples().unwrap() {
        let y = suggest_objective(&p);
        engine.record(p, y);
    }
    while engine.len() < n {
        let s = engine.suggest(None).unwrap();
        let y = suggest_objective(&s.partition);
        engine.record(s.partition, y);
    }
    engine
}

/// The pre-optimization GP, reconstructed from the public linear-algebra
/// pieces: training points kept unscaled, so every covariance pays a
/// division per coordinate per training pair (`Kernel::eval`), and every
/// prediction allocates its `k_star` and solve vectors.
struct BaselineGp {
    kernel: Kernel,
    xs: Vec<Vec<f64>>,
    mean_y: f64,
    alpha: Vec<f64>,
    chol: clite_gp::linalg::Cholesky,
}

impl BaselineGp {
    fn fit(kernel: Kernel, noise: f64, xs: Vec<Vec<f64>>, ys: &[f64]) -> Self {
        let mut gram = kernel.gram(&xs);
        gram.add_diagonal(noise);
        let chol = clite_gp::linalg::Cholesky::decompose(&gram).unwrap();
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - mean_y).collect();
        let alpha = chol.solve(&centered).unwrap();
        Self { kernel, xs, mean_y, alpha, chol }
    }

    fn predict_std(&self, x: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean = self.mean_y + clite_gp::linalg::dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower(&k_star).unwrap();
        let var = self.kernel.variance() - clite_gp::linalg::dot(&v, &v);
        (mean, var.max(0.0).sqrt())
    }
}

/// The pre-optimization `suggest()` hot path, reconstructed for
/// comparison: every call re-encodes the history, refits the GP from
/// scratch under the cached kernel (O(n³)), and hill-climbs over
/// *materialized* neighbour lists with an allocating encode + predict per
/// candidate. Start construction (incumbent + last + 4 random restarts +
/// coin-flip jitter) mirrors the maximizer so the search effort matches,
/// and the kernel is the engine's own grid-refresh winner so both sides
/// climb the same EI landscape.
fn baseline_suggest(
    space: &SearchSpace,
    history: &[(Partition, f64)],
    visited: &HashSet<Partition>,
    kernel: Kernel,
    rng: &mut StdRng,
) -> (Partition, f64) {
    let xs: Vec<Vec<f64>> = history.iter().map(|(p, _)| space.encode(p)).collect();
    let ys: Vec<f64> = history.iter().map(|(_, s)| *s).collect();
    let best_score = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let gp = BaselineGp::fit(kernel, 1e-4, xs, &ys);
    let acq = Acquisition::paper_default();
    let eval = |p: &Partition| {
        let f = space.encode(p);
        let (m, s) = gp.predict_std(&f);
        acq.score(m, s, best_score)
    };

    let best_p = history
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(p, _)| p.clone())
        .expect("non-empty history");
    let mut starts = vec![best_p, history.last().unwrap().0.clone()];
    for _ in 0..4 {
        starts.push(space.random(rng).unwrap());
    }
    let mut jittered = Vec::new();
    for p in &starts {
        if rng.gen_bool(0.5) {
            let mut q = p.clone();
            for _ in 0..rng.gen_range(1..=3) {
                let neighbors = q.neighbors(None);
                q = neighbors[rng.gen_range(0..neighbors.len())].clone();
            }
            jittered.push(q);
        }
    }
    starts.extend(jittered);

    let mut best: Option<(Partition, f64)> = None;
    for start in starts {
        let mut current = start;
        let mut current_val = eval(&current);
        for _ in 0..25 {
            let neighbors = current.neighbors(None);
            let mut moved = false;
            for n in neighbors {
                let v = eval(&n);
                if v > current_val {
                    current_val = v;
                    current = n;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        if visited.contains(&current) {
            continue;
        }
        if best.as_ref().is_none_or(|(_, bv)| current_val > *bv) {
            best = Some((current, current_val));
        }
    }
    best.expect("baseline found a candidate")
}

/// End-to-end `suggest()` at growing history sizes on a small and a
/// paper-sized job mix: the maintained-surrogate fast path against the
/// reconstructed pre-optimization path. The acceptance bar for this PR is
/// `suggest_new_5jobs_n60` at least 3x faster than
/// `suggest_baseline_5jobs_n60`.
fn bench_suggest(c: &mut Criterion) {
    for &jobs in &[2usize, 5] {
        for &n in &[10usize, 30, 60] {
            let engine = prepared_engine(jobs, n);
            c.bench_function(&format!("suggest_new_{jobs}jobs_n{n}"), |b| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| e.suggest(None).unwrap(),
                    BatchSize::SmallInput,
                )
            });

            let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
            let history = engine.history().to_vec();
            let visited: HashSet<Partition> = history.iter().map(|(p, _)| p.clone()).collect();
            let kernel = engine.current_kernel().expect("refreshed engine").clone();
            c.bench_function(&format!("suggest_baseline_{jobs}jobs_n{n}"), |b| {
                b.iter_batched(
                    || StdRng::seed_from_u64(23),
                    |mut rng| {
                        baseline_suggest(&space, &history, &visited, kernel.clone(), &mut rng)
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }

    // The record-time cost of growing the surrogate by one observation:
    // rank-1 Cholesky extension (O(n²)) against the from-scratch refit
    // (O(n³)) it replaces.
    let engine = prepared_engine(5, 60);
    let space = SearchSpace::new(ResourceCatalog::testbed(), 5).unwrap();
    let xs: Vec<Vec<f64>> = engine.history().iter().map(|(p, _)| space.encode(p)).collect();
    let ys: Vec<f64> = engine.history().iter().map(|(_, s)| *s).collect();
    let kernel = Kernel::matern52(0.04, 0.3);
    let config = GpConfig { noise_variance: 1e-4 };
    let base =
        GaussianProcess::fit(kernel.clone(), config, xs[..59].to_vec(), ys[..59].to_vec()).unwrap();
    let (new_x, new_y) = (xs[59].clone(), ys[59]);
    c.bench_function("gp_extend_rank1_n60", |b| {
        b.iter(|| base.extended(black_box(new_x.clone()), black_box(new_y)).unwrap())
    });
    c.bench_function("gp_fit_scratch_n60", |b| {
        b.iter(|| {
            GaussianProcess::fit(
                kernel.clone(),
                config,
                black_box(xs.clone()),
                black_box(ys.clone()),
            )
            .unwrap()
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let jobs = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server = Server::new(ResourceCatalog::testbed(), jobs.clone(), 1).unwrap();
    let p = Partition::equal_share(server.catalog(), 3).unwrap();
    c.bench_function("server_observe_3jobs", |b| b.iter(|| server.observe(black_box(&p))));

    // The memoized hit path: same partition + load vector as the primed
    // entry, so every iteration replays the cached observation (compare
    // against `server_observe_3jobs` for the hit-path speedup).
    let mut memo = MemoizedTestbed::new(Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap());
    let _ = Testbed::observe(&mut memo, &p);
    c.bench_function("memoized_observe_hit_3jobs", |b| {
        b.iter(|| Testbed::observe(&mut memo, black_box(&p)))
    });

    // Same pair at a paper-sized mix (4 LC + 1 BG): the simulator's window
    // cost grows per job while the replay cost is nearly flat, so this is
    // the ratio ORACLE sweeps and steady-state monitoring actually see.
    let jobs5 = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.3),
        JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server5 = Server::new(ResourceCatalog::testbed(), jobs5.clone(), 1).unwrap();
    let p5 = Partition::equal_share(server5.catalog(), 5).unwrap();
    c.bench_function("server_observe_5jobs", |b| b.iter(|| server5.observe(black_box(&p5))));
    let mut memo5 =
        MemoizedTestbed::new(Server::new(ResourceCatalog::testbed(), jobs5, 1).unwrap());
    let _ = Testbed::observe(&mut memo5, &p5);
    c.bench_function("memoized_observe_hit_5jobs", |b| {
        b.iter(|| Testbed::observe(&mut memo5, black_box(&p5)))
    });

    let obs = server.observe(&p);
    c.bench_function("score_eq3", |b| b.iter(|| score_value(black_box(&obs))));

    c.bench_function("partition_neighbors_3jobs", |b| b.iter(|| black_box(&p).neighbors(None)));
}

/// Telemetry overhead on the hot path. The disabled (Noop) context must
/// cost essentially nothing over the bare computation: `emit` through the
/// noop recorder is an inlined empty call, and `time` adds only two
/// `Instant::now` reads per span. Compare the three `score_eq3*` rows —
/// bare vs noop should be indistinguishable, while the memory recorder
/// pays for event construction and storage.
fn bench_telemetry(c: &mut Criterion) {
    let jobs = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
    let p = Partition::equal_share(server.catalog(), 2).unwrap();
    let obs = server.observe(&p);

    c.bench_function("score_eq3_bare", |b| b.iter(|| score_value(black_box(&obs))));

    let disabled = Telemetry::disabled();
    c.bench_function("score_eq3_noop_span", |b| {
        b.iter(|| disabled.time(Phase::Score, || score_value(black_box(&obs))))
    });

    let sink = MemoryRecorder::new();
    let recording = Telemetry::new(&sink);
    c.bench_function("score_eq3_memory_span", |b| {
        b.iter(|| recording.time(Phase::Score, || score_value(black_box(&obs))))
    });

    c.bench_function("emit_noop", |b| {
        b.iter(|| {
            disabled
                .emit(black_box(Event::CandidateChosen { sample: 3, expected_improvement: 0.01 }))
        })
    });
    c.bench_function("emit_memory", |b| {
        b.iter(|| {
            recording
                .emit(black_box(Event::CandidateChosen { sample: 3, expected_improvement: 0.01 }))
        })
    });
}

/// Cold vs. warm search convergence (the PR 4 acceptance metric): a
/// controller re-invoked on a mix it has already searched warm-starts its
/// surrogate from the observation store and skips bootstrap, so it reaches
/// a QoS-meeting partition in fewer observation windows. The setup prints
/// the window counts (total, and to the first QoS-meeting partition) that
/// `results/BENCH_pr4.json` archives; the timed body is the full search,
/// whose cost is proportional to windows on the simulator substrate.
fn bench_warm_start(c: &mut Criterion) {
    let mixes: [(&str, Vec<JobSpec>); 2] = [
        (
            "2jobs",
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
                JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
            ],
        ),
        // 20% per LC job: heavy enough that the cold search works for its
        // QoS-meeting partition, light enough that one exists.
        (
            "5jobs",
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
                JobSpec::latency_critical(WorkloadId::ImgDnn, 0.2),
                JobSpec::latency_critical(WorkloadId::Masstree, 0.2),
                JobSpec::latency_critical(WorkloadId::Xapian, 0.2),
                JobSpec::background(WorkloadId::Streamcluster),
            ],
        ),
    ];
    let controller = CliteController::default();
    for (name, jobs) in mixes {
        let fresh = || Server::new(ResourceCatalog::testbed(), jobs.clone(), 5).unwrap();

        // One cold pass primes the store; the warm start is snapshotted
        // once so every warm iteration replays the same stored samples.
        let store = ObservationStore::in_memory().into_shared();
        let cold = {
            let mut server = fresh();
            controller.run_with_store(&mut server, &store, &Telemetry::disabled()).unwrap()
        };
        let warm = {
            let server = fresh();
            let signature = MixSignature::capture(&server);
            store.lock().unwrap().warm_start(&signature).expect("primed store must hit")
        };
        let warmed = {
            let mut server = fresh();
            controller.run_warmed(&mut server, &warm, &Telemetry::disabled()).unwrap()
        };
        eprintln!(
            "search_{name}: cold {} windows (QoS at {:?}), warm {} windows (QoS at {:?}), \
             {} stored samples",
            cold.samples_used(),
            cold.samples_to_qos,
            warmed.samples_used(),
            warmed.samples_to_qos,
            warm.entries.len()
        );
        assert!(
            warmed.samples_used() < cold.samples_used(),
            "warm search must use fewer observation windows"
        );

        // Full end-to-end searches are orders of magnitude longer than the
        // other microbenches; a smaller sample count keeps the suite usable.
        let mut g = c.benchmark_group("search");
        g.sample_size(15);
        g.bench_function(&format!("search_cold_{name}"), |b| {
            b.iter_batched(fresh, |mut s| controller.run(&mut s).unwrap(), BatchSize::SmallInput)
        });
        g.bench_function(&format!("search_warm_{name}"), |b| {
            b.iter_batched(
                fresh,
                |mut s| controller.run_warmed(&mut s, &warm, &Telemetry::disabled()).unwrap(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_gp,
    bench_acquisition,
    bench_suggest,
    bench_simulator,
    bench_telemetry,
    bench_warm_start
);
criterion_main!(benches);
