//! Microbenchmarks for the building blocks on CLITE's critical path: the
//! per-iteration cost the paper reports as "less than 100 ms in most
//! cases" decomposes into GP fitting/prediction, acquisition evaluation,
//! acquisition maximization, score computation, and partition enforcement.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use clite::score::score_value;
use clite_bo::acquisition::Acquisition;
use clite_bo::optimizer::{maximize_acquisition, OptimizerConfig};
use clite_bo::space::SearchSpace;
use clite_gp::gp::{GaussianProcess, GpConfig};
use clite_gp::kernel::Kernel;
use clite_sim::prelude::*;
use clite_sim::testbed::{MemoizedTestbed, Testbed};
use clite_telemetry::{Event, MemoryRecorder, Phase, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn training_data(n: usize, jobs: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> =
        (0..n).map(|_| space.encode(&space.random(&mut rng).unwrap())).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / x.len() as f64).collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let (xs, ys) = training_data(30, 4);
    let dims = xs[0].len(); // 4 jobs x NUM_RESOURCES
    c.bench_function("gp_fit_n30", |b| {
        b.iter(|| {
            GaussianProcess::fit(
                Kernel::matern52(0.04, 0.3),
                GpConfig::default(),
                black_box(xs.clone()),
                black_box(ys.clone()),
            )
            .unwrap()
        })
    });
    let gp =
        GaussianProcess::fit(Kernel::matern52(0.04, 0.3), GpConfig::default(), xs, ys).unwrap();
    let query = vec![0.3; dims];
    c.bench_function("gp_predict_n30", |b| b.iter(|| gp.predict(black_box(&query))));
}

fn bench_acquisition(c: &mut Criterion) {
    let acq = Acquisition::paper_default();
    c.bench_function("ei_eval", |b| {
        b.iter(|| acq.score(black_box(0.6), black_box(0.1), black_box(0.7)))
    });

    let (xs, ys) = training_data(30, 3);
    let gp =
        GaussianProcess::fit(Kernel::matern52(0.04, 0.3), GpConfig::default(), xs, ys).unwrap();
    let space = SearchSpace::new(ResourceCatalog::testbed(), 3).unwrap();
    c.bench_function("acquisition_maximize_3jobs", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                maximize_acquisition(
                    &space,
                    OptimizerConfig::default(),
                    |p| {
                        let (m, s) = gp.predict_std(&space.encode(p));
                        acq.score(m, s, 0.7)
                    },
                    &[space.equal_share().unwrap()],
                    None,
                    &HashSet::new(),
                    &mut rng,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulator(c: &mut Criterion) {
    let jobs = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server = Server::new(ResourceCatalog::testbed(), jobs.clone(), 1).unwrap();
    let p = Partition::equal_share(server.catalog(), 3).unwrap();
    c.bench_function("server_observe_3jobs", |b| b.iter(|| server.observe(black_box(&p))));

    // The memoized hit path: same partition + load vector as the primed
    // entry, so every iteration replays the cached observation (compare
    // against `server_observe_3jobs` for the hit-path speedup).
    let mut memo = MemoizedTestbed::new(Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap());
    let _ = Testbed::observe(&mut memo, &p);
    c.bench_function("memoized_observe_hit_3jobs", |b| {
        b.iter(|| Testbed::observe(&mut memo, black_box(&p)))
    });

    // Same pair at a paper-sized mix (4 LC + 1 BG): the simulator's window
    // cost grows per job while the replay cost is nearly flat, so this is
    // the ratio ORACLE sweeps and steady-state monitoring actually see.
    let jobs5 = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.3),
        JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server5 = Server::new(ResourceCatalog::testbed(), jobs5.clone(), 1).unwrap();
    let p5 = Partition::equal_share(server5.catalog(), 5).unwrap();
    c.bench_function("server_observe_5jobs", |b| b.iter(|| server5.observe(black_box(&p5))));
    let mut memo5 =
        MemoizedTestbed::new(Server::new(ResourceCatalog::testbed(), jobs5, 1).unwrap());
    let _ = Testbed::observe(&mut memo5, &p5);
    c.bench_function("memoized_observe_hit_5jobs", |b| {
        b.iter(|| Testbed::observe(&mut memo5, black_box(&p5)))
    });

    let obs = server.observe(&p);
    c.bench_function("score_eq3", |b| b.iter(|| score_value(black_box(&obs))));

    c.bench_function("partition_neighbors_3jobs", |b| b.iter(|| black_box(&p).neighbors(None)));
}

/// Telemetry overhead on the hot path. The disabled (Noop) context must
/// cost essentially nothing over the bare computation: `emit` through the
/// noop recorder is an inlined empty call, and `time` adds only two
/// `Instant::now` reads per span. Compare the three `score_eq3*` rows —
/// bare vs noop should be indistinguishable, while the memory recorder
/// pays for event construction and storage.
fn bench_telemetry(c: &mut Criterion) {
    let jobs = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
    let p = Partition::equal_share(server.catalog(), 2).unwrap();
    let obs = server.observe(&p);

    c.bench_function("score_eq3_bare", |b| b.iter(|| score_value(black_box(&obs))));

    let disabled = Telemetry::disabled();
    c.bench_function("score_eq3_noop_span", |b| {
        b.iter(|| disabled.time(Phase::Score, || score_value(black_box(&obs))))
    });

    let sink = MemoryRecorder::new();
    let recording = Telemetry::new(&sink);
    c.bench_function("score_eq3_memory_span", |b| {
        b.iter(|| recording.time(Phase::Score, || score_value(black_box(&obs))))
    });

    c.bench_function("emit_noop", |b| {
        b.iter(|| {
            disabled
                .emit(black_box(Event::CandidateChosen { sample: 3, expected_improvement: 0.01 }))
        })
    });
    c.bench_function("emit_memory", |b| {
        b.iter(|| {
            recording
                .emit(black_box(Event::CandidateChosen { sample: 3, expected_improvement: 0.01 }))
        })
    });
}

criterion_group!(benches, bench_gp, bench_acquisition, bench_simulator, bench_telemetry);
criterion_main!(benches);
