//! Multi-core scaling benches for the shared worker-pool substrate:
//! end-to-end `suggest()` and the hyper-grid `fit_best` scan at 1/2/4/8
//! pool slots on the 2-job and 5-job mixes. All slot counts produce
//! byte-identical results (see `crates/bo/tests/parallel_determinism.rs`);
//! these benches measure only where the wall-clock goes. The committed
//! speedup curve lives in `results/BENCH_pr8.json` (the `par` experiment);
//! run these with `CLITE_PAR_THREADS` set to the pool size under test.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use clite_bo::engine::{BoConfig, BoEngine};
use clite_bo::space::SearchSpace;
use clite_gp::gp::GpConfig;
use clite_gp::hyper::{fit_best_threaded, HyperGrid};
use clite_gp::kernel::Kernel;
use clite_sim::alloc::Partition;
use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic synthetic objective (same family the engine tests climb).
fn objective(p: &Partition) -> f64 {
    let jobs = p.job_count();
    0.6 * p.fraction(0, ResourceKind::Cores) + 0.4 * p.fraction(jobs - 1, ResourceKind::LlcWays)
}

/// An engine holding `n` observations, configured to refresh its hyper
/// grid on *every* suggest: the refresh round carries the largest
/// fan-outs (15 grid fits + the multi-start climbs), so it is the round
/// the substrate parallelizes and the one worth scaling.
fn prepared_engine(jobs: usize, n: usize, threads: usize) -> BoEngine {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
    let config = BoConfig { hyper_refresh_every: 1, ..BoConfig::default() }.with_threads(threads);
    let mut engine = BoEngine::new(space, config, 11);
    for p in engine.bootstrap_samples().unwrap() {
        let y = objective(&p);
        engine.record(p, y);
    }
    while engine.len() < n {
        let s = engine.suggest(None).unwrap();
        let y = objective(&s.partition);
        engine.record(s.partition, y);
    }
    engine
}

/// Random training data shaped like a `jobs`-mix encoding.
fn training_data(n: usize, jobs: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> =
        (0..n).map(|_| space.encode(&space.random(&mut rng).unwrap())).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / x.len() as f64).collect();
    (xs, ys)
}

fn bench_suggest_threads(c: &mut Criterion) {
    for &jobs in &[2usize, 5] {
        for &threads in &[1usize, 2, 4, 8] {
            let engine = prepared_engine(jobs, 60, threads);
            c.bench_function(&format!("suggest_{jobs}jobs_n60_t{threads}"), |b| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| e.suggest(None).unwrap(),
                    BatchSize::SmallInput,
                )
            });
        }
    }
}

fn bench_fit_best_threads(c: &mut Criterion) {
    let grid = HyperGrid::default_unit();
    let template = Kernel::matern52(1.0, 1.0);
    for &jobs in &[2usize, 5] {
        let (xs, ys) = training_data(60, jobs);
        for &threads in &[1usize, 2, 4, 8] {
            c.bench_function(&format!("fit_best_{jobs}jobs_n60_t{threads}"), |b| {
                b.iter(|| {
                    fit_best_threaded(&template, GpConfig::default(), &grid, &xs, &ys, threads)
                        .unwrap()
                })
            });
        }
    }
}

criterion_group!(benches, bench_suggest_threads, bench_fit_best_threads);
criterion_main!(benches);
