//! Steady-state monitoring and re-invocation on load change (paper
//! Fig. 16).
//!
//! After a search converges, CLITE enforces the best partition and
//! "performance for all jobs is periodically monitored. If the observed
//! performance or the job mix changes, CLITE can be reinvoked to determine
//! new optimal resource partition". [`run_adaptive`] implements that loop
//! against a server whose LC loads follow time-varying
//! [`LoadSchedule`](clite_sim::load::LoadSchedule)s: monitor each window,
//! and when QoS breaks for `violation_patience` consecutive windows,
//! re-run the full search.

use serde::Serialize;

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;
use clite_sim::testbed::Testbed;
use clite_store::SharedStore;
use clite_telemetry::{Event, Telemetry};

use crate::controller::{fault_kind, CliteController};
use crate::score::{score_observation, ScoreBreakdown};
use crate::CliteError;

/// Which phase of the adaptive loop a trace point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Phase {
    /// A window evaluated during a search (bootstrap or BO sample).
    Search,
    /// A steady-state monitoring window under the current best partition.
    Steady,
}

/// One observation window in an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdaptivePoint {
    /// Simulated time at the end of the window (seconds).
    pub time_s: f64,
    /// Search or steady-state.
    pub phase: Phase,
    /// Partition enforced for this window.
    pub partition: Partition,
    /// The measurements.
    pub observation: Observation,
    /// Eq. 3 score of the window.
    pub score: ScoreBreakdown,
}

/// Configuration of the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AdaptiveConfig {
    /// Consecutive QoS-violating steady windows that trigger re-invocation.
    pub violation_patience: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self { violation_patience: 2 }
    }
}

/// Full trace of an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdaptiveTrace {
    /// Every window, in time order.
    pub points: Vec<AdaptivePoint>,
    /// Number of times the search was (re-)invoked, including the first.
    pub invocations: usize,
    /// `Some(reason)` when the run ended early because the node degraded —
    /// a search gave up to its safe fallback, or steady-state monitoring
    /// hit an unrecoverable fault (node crash, or transient faults past
    /// the retry budget). The trace up to that point is still valid; the
    /// fault itself is in the string. `None` for a clean run.
    pub degraded: Option<String>,
}

impl AdaptiveTrace {
    /// Fraction of steady-state windows meeting all QoS targets.
    #[must_use]
    pub fn steady_qos_fraction(&self) -> f64 {
        let steady: Vec<_> = self.points.iter().filter(|p| p.phase == Phase::Steady).collect();
        if steady.is_empty() {
            return 0.0;
        }
        steady.iter().filter(|p| p.observation.all_qos_met()).count() as f64 / steady.len() as f64
    }
}

/// Runs CLITE adaptively on `server` (any [`Testbed`] backend) until
/// simulated time reaches `duration_s`: search → enforce best → monitor →
/// re-invoke on sustained violation.
///
/// # Errors
///
/// Propagates controller errors ([`CliteError`]).
pub fn run_adaptive<T: Testbed>(
    controller: &CliteController,
    server: &mut T,
    duration_s: f64,
    config: AdaptiveConfig,
) -> Result<AdaptiveTrace, CliteError> {
    run_adaptive_inner(controller, server, duration_s, config, None, &Telemetry::disabled())
}

/// [`run_adaptive`] against a persistent observation store: every search
/// invocation looks up warm samples for the current mix signature first
/// and appends its own windows afterwards, so re-invocations on a
/// previously seen load point (this run *or* an earlier process) skip the
/// cold bootstrap.
///
/// # Errors
///
/// Propagates controller errors, including [`CliteError::Store`] if the
/// store's log cannot be written.
pub fn run_adaptive_with_store<T: Testbed>(
    controller: &CliteController,
    server: &mut T,
    duration_s: f64,
    config: AdaptiveConfig,
    store: &SharedStore,
    telemetry: &Telemetry<'_>,
) -> Result<AdaptiveTrace, CliteError> {
    run_adaptive_inner(controller, server, duration_s, config, Some(store), telemetry)
}

fn run_adaptive_inner<T: Testbed>(
    controller: &CliteController,
    server: &mut T,
    duration_s: f64,
    config: AdaptiveConfig,
    store: Option<&SharedStore>,
    telemetry: &Telemetry<'_>,
) -> Result<AdaptiveTrace, CliteError> {
    let mut points: Vec<AdaptivePoint> = Vec::new();
    let mut invocations = 0usize;
    let mut degraded: Option<String> = None;
    let max_steady_faults = controller.config().recovery.max_retries;

    'outer: while server.time_s() < duration_s {
        // ── Search phase ─────────────────────────────────────────────────
        invocations += 1;
        let outcome = match store {
            Some(store) => controller.run_with_store(server, store, telemetry),
            None => controller.run_with(server, telemetry),
        };
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(e @ CliteError::Degraded { .. }) => {
                // The search gave up and already re-enforced its safe
                // fallback; keep the trace collected so far rather than
                // discarding the whole run.
                degraded = Some(e.to_string());
                break 'outer;
            }
            Err(e) => return Err(e),
        };
        for rec in &outcome.samples {
            points.push(AdaptivePoint {
                time_s: rec.observation.time_s,
                phase: Phase::Search,
                partition: rec.partition.clone(),
                observation: rec.observation.clone(),
                score: rec.score.clone(),
            });
        }
        let best = outcome.best_partition.clone();

        // ── Steady-state monitoring ──────────────────────────────────────
        let mut consecutive_violations = 0usize;
        let mut consecutive_faults = 0usize;
        while server.time_s() < duration_s {
            let observation = match server.try_observe(&best) {
                Ok(observation) => {
                    consecutive_faults = 0;
                    observation
                }
                Err(fault) if fault.is_transient_fault() => {
                    telemetry.emit(Event::FaultInjected {
                        sample: points.len(),
                        fault: fault_kind(&fault).to_owned(),
                    });
                    consecutive_faults += 1;
                    if consecutive_faults > max_steady_faults {
                        degraded = Some(fault.to_string());
                        break 'outer;
                    }
                    // The faulted window already advanced the clock; just
                    // monitor the next one.
                    continue;
                }
                Err(fault) if fault.is_node_crash() => {
                    telemetry.emit(Event::FaultInjected {
                        sample: points.len(),
                        fault: fault_kind(&fault).to_owned(),
                    });
                    degraded = Some(fault.to_string());
                    break 'outer;
                }
                Err(e) => return Err(e.into()),
            };
            let score = score_observation(&observation);
            let met = observation.all_qos_met();
            points.push(AdaptivePoint {
                time_s: observation.time_s,
                phase: Phase::Steady,
                partition: best.clone(),
                observation,
                score,
            });
            if met {
                consecutive_violations = 0;
            } else {
                consecutive_violations += 1;
                if consecutive_violations >= config.violation_patience {
                    break; // re-invoke the search
                }
            }
        }
    }

    Ok(AdaptiveTrace { points, invocations, degraded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::load::LoadSchedule;
    use clite_sim::prelude::*;

    #[test]
    fn static_load_invokes_search_once() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 0.2),
            JobSpec::background(WorkloadId::Fluidanimate),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 10).unwrap();
        let trace = run_adaptive(
            &CliteController::default(),
            &mut server,
            300.0,
            AdaptiveConfig::default(),
        )
        .unwrap();
        assert_eq!(trace.invocations, 1, "constant load must not re-trigger the search");
        assert!(trace.steady_qos_fraction() > 0.9);
    }

    #[test]
    fn load_step_reinvokes_search() {
        // The paper's Fig. 16 scenario: memcached load steps 10% → 30%
        // while img-dnn and masstree stay at 10%.
        let jobs = vec![
            JobSpec::latency_critical_scheduled(
                WorkloadId::Memcached,
                LoadSchedule::Steps(vec![(0.0, 0.10), (220.0, 0.90)]),
            ),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 0.10),
            JobSpec::latency_critical(WorkloadId::Masstree, 0.10),
            JobSpec::background(WorkloadId::Fluidanimate),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 11).unwrap();
        let trace = run_adaptive(
            &CliteController::default(),
            &mut server,
            620.0,
            AdaptiveConfig::default(),
        )
        .unwrap();
        // The 10%→90% memcached step must break QoS under the old partition
        // and force at least one re-invocation.
        assert!(trace.invocations >= 2, "invocations {}", trace.invocations);
        // The run must mostly hold QoS in steady state; the 90% memcached
        // point is near the feasibility boundary, so measurement noise may
        // flip individual windows.
        assert!(
            trace.steady_qos_fraction() > 0.6,
            "steady QoS fraction {}",
            trace.steady_qos_fraction()
        );
        let last_steady: Vec<_> =
            trace.points.iter().rev().filter(|p| p.phase == Phase::Steady).take(10).collect();
        assert!(!last_steady.is_empty());
        let met = last_steady.iter().filter(|p| p.observation.all_qos_met()).count();
        assert!(
            met * 10 >= last_steady.len() * 3,
            "{met}/{} final steady windows met",
            last_steady.len()
        );
    }

    /// Splits a trace into its contiguous search-phase segments: one
    /// segment per invocation, each the number of windows that invocation
    /// spent searching.
    fn search_segments(trace: &AdaptiveTrace) -> Vec<usize> {
        let mut segments = Vec::new();
        let mut in_search = false;
        for p in &trace.points {
            match (p.phase, in_search) {
                (Phase::Search, false) => {
                    segments.push(1);
                    in_search = true;
                }
                (Phase::Search, true) => *segments.last_mut().unwrap() += 1,
                (Phase::Steady, _) => in_search = false,
            }
        }
        segments
    }

    #[test]
    fn warm_reinvocation_on_unchanged_mix_uses_fewer_search_windows() {
        use clite_store::ObservationStore;

        // Complementary load swaps: memcached and img-dnn trade places at
        // t=250 s and trade back at t=500 s. Each swap breaks the partition
        // tuned for the previous phase (the newly loaded job is starved),
        // forcing a re-invocation — and the third invocation runs at
        // exactly the first invocation's load point, so with a store it is
        // an exact warm hit on the first invocation's samples.
        let jobs = vec![
            JobSpec::latency_critical_scheduled(
                WorkloadId::Memcached,
                LoadSchedule::Steps(vec![(0.0, 0.85), (250.0, 0.10), (500.0, 0.85)]),
            ),
            JobSpec::latency_critical_scheduled(
                WorkloadId::ImgDnn,
                LoadSchedule::Steps(vec![(0.0, 0.10), (250.0, 0.85), (500.0, 0.10)]),
            ),
            JobSpec::background(WorkloadId::Fluidanimate),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 21).unwrap();
        let store = ObservationStore::in_memory().into_shared();
        let trace = run_adaptive_with_store(
            &CliteController::default(),
            &mut server,
            740.0,
            AdaptiveConfig::default(),
            &store,
            &Telemetry::disabled(),
        )
        .unwrap();

        assert!(
            trace.invocations >= 3,
            "load swaps must re-invoke twice, got {}",
            trace.invocations
        );
        let segments = search_segments(&trace);
        assert_eq!(segments.len(), trace.invocations);
        let cold = segments[0];
        let warm = segments[2];
        assert!(warm < cold, "warm re-invocation used {warm} search windows, cold used {cold}");
        {
            let guard = store.lock().unwrap();
            assert!(guard.stats().hits >= 1, "third invocation must hit the store");
        }
        // Store or not, the trace stays time-ordered.
        for w in trace.points.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
        }
    }

    #[test]
    fn trace_points_are_time_ordered() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
            JobSpec::background(WorkloadId::Canneal),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 12).unwrap();
        let trace = run_adaptive(
            &CliteController::default(),
            &mut server,
            150.0,
            AdaptiveConfig::default(),
        )
        .unwrap();
        for w in trace.points.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
        }
    }
}
