//! The CLITE search loop (paper Fig. 5 / Algorithm 1).
//!
//! One [`CliteController::run`]:
//!
//! 1. **Bootstrap** — evaluate the equal-division partition plus one
//!    maximum-allocation extremum per job (`N_jobs + 1` samples). An LC job
//!    that misses QoS *under its own maximum extremum* can never meet it in
//!    this co-location; it is reported in
//!    [`CliteOutcome::infeasible_jobs`](crate::trace::CliteOutcome) and the
//!    search stops immediately ("these jobs can be immediately scheduled
//!    elsewhere without wasting any BO cycles").
//! 2. **Search** — repeat: pick a dropout job (the LC job performing best
//!    so far, frozen at its best-seen allocation), ask the BO engine for
//!    the acquisition-maximizing partition with that row frozen, enforce
//!    it, observe for one window, score with Eq. 3, record.
//! 3. **Terminate** — when the expected improvement stays below the
//!    job-count-scaled threshold (or the iteration cap fires).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_bo::engine::BoEngine;
use clite_bo::space::SearchSpace;
use clite_bo::BoError;
use clite_sim::alloc::{JobAllocation, Partition};
use clite_sim::metrics::Observation;
use clite_sim::testbed::Testbed;
use clite_sim::workload::JobClass;
use clite_sim::SimError;
use clite_store::{MixSignature, SharedStore, WarmStart};
use clite_telemetry::{Event, Phase, StopReason, Telemetry};

use crate::config::{CliteConfig, DropoutPolicy, RecoveryConfig};
use crate::score::{score_observation, ScoreBreakdown};
use crate::trace::{CliteOutcome, SampleRecord};
use crate::CliteError;

/// The CLITE controller.
#[derive(Debug, Clone, Default)]
pub struct CliteController {
    config: CliteConfig,
}

impl CliteController {
    /// Builds a controller with the given configuration.
    #[must_use]
    pub fn new(config: CliteConfig) -> Self {
        Self { config }
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &CliteConfig {
        &self.config
    }

    /// Runs one full search on `testbed` (any [`Testbed`] backend) and
    /// returns the outcome. The testbed is left with the last *sampled*
    /// partition enforced; callers should enforce
    /// [`CliteOutcome::best_partition`] afterwards (the adaptive runner
    /// does).
    ///
    /// # Errors
    ///
    /// Returns [`CliteError::Bo`] if the engine cannot fit a surrogate or
    /// produce a candidate, and [`CliteError::Sim`] for simulator
    /// rejections.
    pub fn run<T: Testbed>(&self, testbed: &mut T) -> Result<CliteOutcome, CliteError> {
        self.run_with(testbed, &Telemetry::disabled())
    }

    /// [`run`](CliteController::run) with telemetry: every bootstrap
    /// sample, QoS violation, dropout freeze, chosen candidate, GP refit,
    /// and the termination reason are emitted as structured events, and
    /// the observe/score/GP-fit/acquisition phases are stopwatch-profiled
    /// into [`CliteOutcome::overhead`] (the paper's Fig. 15b breakdown).
    ///
    /// # Errors
    ///
    /// See [`CliteController::run`].
    pub fn run_with<T: Testbed>(
        &self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<CliteOutcome, CliteError> {
        self.run_inner(server, None, telemetry)
    }

    /// [`run_with`](CliteController::run_with), primed with stored samples
    /// from an earlier search on the same (or a nearby-load) mix.
    ///
    /// The warm entries seed the BO engine's history — so the surrogate
    /// starts informed and stored points are never re-proposed — but are
    /// *not* added to the run's sample trace: [`CliteOutcome::samples`]
    /// still contains only windows this run actually observed, and their
    /// timestamps stay monotone. When the warm evidence contains a
    /// QoS-meeting configuration and at least `N_jobs + 1` entries, the
    /// bootstrap phase is skipped entirely (its two purposes — seeding the
    /// surrogate and per-job infeasibility screening — are already
    /// answered by the prior run).
    ///
    /// # Errors
    ///
    /// See [`CliteController::run`].
    pub fn run_warmed<T: Testbed>(
        &self,
        server: &mut T,
        warm: &WarmStart,
        telemetry: &Telemetry<'_>,
    ) -> Result<CliteOutcome, CliteError> {
        self.run_inner(server, Some(warm), telemetry)
    }

    /// One search against a persistent observation store: looks up warm
    /// samples for the testbed's current mix signature, runs (warm or
    /// cold), then appends every window this run observed back to the
    /// store for the next invocation.
    ///
    /// # Errors
    ///
    /// [`CliteError::Store`] if the store's log cannot be written, plus
    /// everything [`CliteController::run`] returns.
    pub fn run_with_store<T: Testbed>(
        &self,
        server: &mut T,
        store: &SharedStore,
        telemetry: &Telemetry<'_>,
    ) -> Result<CliteOutcome, CliteError> {
        let signature = MixSignature::capture(server);
        let warm = {
            let mut guard = store.lock().expect("observation store lock");
            guard.warm_start_with(&signature, telemetry)
        };
        let outcome = match &warm {
            Some(warm) => self.run_warmed(server, warm, telemetry)?,
            None => self.run_with(server, telemetry)?,
        };
        {
            let mut guard = store.lock().expect("observation store lock");
            for rec in &outcome.samples {
                guard.append_with(
                    &signature,
                    &rec.partition,
                    &rec.observation,
                    rec.score.value,
                    telemetry,
                )?;
            }
        }
        Ok(outcome)
    }

    fn run_inner<T: Testbed>(
        &self,
        server: &mut T,
        warm: Option<&WarmStart>,
        telemetry: &Telemetry<'_>,
    ) -> Result<CliteOutcome, CliteError> {
        let jobs = server.job_count();
        let space = SearchSpace::new(*server.catalog(), jobs)?;
        let mut engine = BoEngine::new(space, self.config.bo.clone(), self.config.seed);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EED_CAFE);

        let recovery = self.config.recovery.clone();
        // The degradation ladder's last rung: when fault retries are
        // exhausted and no QoS-feasible sample exists yet, the controller
        // re-enforces the equal-share bootstrap partition.
        let equal_share = Partition::equal_share(server.catalog(), jobs)?;
        let mut quarantined = 0usize;

        let mut samples: Vec<SampleRecord> = Vec::new();
        let mut infeasible: Vec<usize> = Vec::new();
        let mut samples_to_qos: Option<usize> = None;

        // Warm evidence of feasibility keeps the search in performance
        // mode from the first sample (see `qos_mode` below).
        let mut warm_qos = false;
        let mut skip_bootstrap = false;
        if let Some(warm) = warm {
            warm_qos = warm.any_qos_met();
            skip_bootstrap = warm_qos && warm.entries.len() > jobs;
            engine.warm_start(warm.entries.iter().map(|e| (e.partition.clone(), e.score)));
            telemetry.emit(Event::WarmStarted { samples: warm.entries.len(), exact: warm.exact });
        }

        // ── Phase 1: bootstrap ────────────────────────────────────────────
        // Skipped when warm evidence already answers what bootstrap asks:
        // a QoS-meeting configuration exists (feasibility) and the
        // surrogate has at least as many seed points as a bootstrap run
        // would produce.
        let bootstrap = if skip_bootstrap { Vec::new() } else { engine.bootstrap_samples()? };
        for (k, partition) in bootstrap.into_iter().enumerate() {
            // Bootstrap samples skip the outlier guard (there is no
            // posterior to compare against yet) but still retry faults.
            let observation = observe_resilient(
                server,
                &partition,
                samples.len(),
                &recovery,
                &samples,
                &equal_share,
                telemetry,
            )?;
            let score = telemetry.time(Phase::Score, || score_observation(&observation));
            telemetry.emit(Event::BootstrapSample {
                sample: samples.len(),
                score: score.value,
                qos_met: observation.all_qos_met(),
            });
            emit_qos_violations(telemetry, samples.len(), &observation);
            if observation.all_qos_met() && samples_to_qos.is_none() {
                samples_to_qos = Some(samples.len());
            }
            // Extremum k ≥ 1 gives job k−1 the maximum allocation: failing
            // QoS there means failing it everywhere.
            if k >= 1 {
                let j = k - 1;
                if server.class(j) == JobClass::LatencyCritical
                    && observation.jobs[j].qos_met == Some(false)
                {
                    infeasible.push(j);
                }
            }
            engine.record_with(partition.clone(), score.value, telemetry);
            samples.push(SampleRecord {
                index: samples.len(),
                bootstrap: true,
                partition,
                observation,
                score,
                expected_improvement: None,
                frozen_job: None,
            });
        }

        if !infeasible.is_empty() {
            let (best_partition, best_score) =
                engine.best().map(|(p, s)| (p.clone(), s)).expect("bootstrap recorded samples");
            for &job in &infeasible {
                telemetry.emit(Event::InfeasibleJob { job });
            }
            telemetry.emit(Event::Terminated {
                reason: StopReason::Infeasible,
                samples: samples.len(),
                best_score,
            });
            return Ok(CliteOutcome {
                best_partition,
                best_score,
                samples,
                converged: false,
                infeasible_jobs: infeasible,
                samples_to_qos,
                quarantined,
                overhead: Some(telemetry.report()),
            });
        }

        // ── Phase 2: BO search with dropout-copy ──────────────────────────
        // Runs to EI termination, then a confirmation pass re-observes the
        // top candidates (the argmax of noisy scores is biased upward — a
        // boundary configuration with one lucky window can masquerade as
        // feasible). If confirmation reveals the incumbent was a mirage
        // (re-observed score < 0.5), the search resumes once with the
        // corrected evidence recorded.
        let mut term = self.config.termination.start(jobs);
        let mut fruitless_local_moves = 0usize;
        #[allow(unused_assignments)]
        let mut converged = false;
        let mut resumptions = 0usize;
        let (best_partition, best_score) = 'outer: loop {
            loop {
                let frozen = self.select_dropout(server, &samples, &mut rng);
                if let Some((job, _)) = frozen {
                    telemetry.emit(Event::DropoutFrozen { sample: samples.len(), job });
                }
                let best_before = engine.best().map(|(_, s)| s).unwrap_or(0.0);
                // A frozen search can dead-end (everything reachable was
                // sampled); retry unconstrained. If even the unconstrained
                // search has no unsampled candidate, the space is exhausted
                // (e.g. a single co-located job has exactly one partition) --
                // that is convergence, not an error.
                let maybe_suggestion = match engine.suggest_with(frozen, telemetry) {
                    Ok(s) => Some(s),
                    Err(BoError::NoCandidate) => match engine.suggest_with(None, telemetry) {
                        Ok(s) => Some(s),
                        Err(BoError::NoCandidate) => None,
                        Err(e) => return Err(e.into()),
                    },
                    Err(e) => return Err(e.into()),
                };
                let Some(mut suggestion) = maybe_suggestion else {
                    converged = true;
                    break;
                };

                // Local donation moves complement the global acquisition:
                //
                // * while some LC job still violates QoS, every other sample
                //   is a *repair* move — route resources from comfortable jobs
                //   to the worst-violating one (interleaved with global EI so
                //   the surrogate keeps exploring);
                // * once QoS is met and the global EI dries up, switch to
                //   *polish* moves — a globally smooth surrogate can report
                //   near-zero EI while genuine gains hide one unit-transfer
                //   from the incumbent.
                //
                // Both ignore the dropout freeze on purpose: the frozen
                // "best-performing" job is usually the very donor whose
                // surplus should move.
                let threshold =
                    self.config.termination.scaled_threshold(jobs) * best_before.abs().max(0.1);
                // QoS mode: met at least once this run, or warm evidence
                // proved the mix feasible before this run started.
                let qos_mode = warm_qos || samples_to_qos.is_some();
                let want_local = if qos_mode {
                    suggestion.expected_improvement < threshold
                } else {
                    // While violating, interleave counter-guided repair with
                    // global exploration (two repair moves per global sample);
                    // the fruitless-streak escape below hands control back to
                    // the global acquisition whenever repair stops paying off.
                    !samples.len().is_multiple_of(3)
                };
                // A streak of fruitless local moves means the incumbent's
                // neighbourhood is tapped out; hand the next sample back to
                // the global acquisition.
                let mut is_local = false;
                if want_local && fruitless_local_moves < 3 {
                    let candidates = donation_candidates(&samples);
                    let polish = match engine.suggest_ordered_with(&candidates, telemetry)? {
                        Some(p) => Some(p),
                        None => engine.suggest_polish_with(None, telemetry)?,
                    };
                    if let Some(polish) = polish {
                        suggestion = polish;
                        is_local = true;
                    }
                }
                telemetry.emit(Event::CandidateChosen {
                    sample: samples.len(),
                    expected_improvement: suggestion.expected_improvement,
                });

                let maybe_validated = validated_observation(
                    server,
                    &suggestion.partition,
                    samples.len(),
                    Some((suggestion.posterior_mean, suggestion.posterior_std)),
                    &recovery,
                    &samples,
                    &equal_share,
                    telemetry,
                    &mut quarantined,
                )?;
                let Some((observation, score)) = maybe_validated else {
                    // The point never produced a trustworthy measurement.
                    // Quarantine it so the engine cannot re-propose it, and
                    // charge the spent windows against the iteration budget
                    // (EI = ∞ cannot fire the threshold, only the cap).
                    engine.quarantine(suggestion.partition.clone());
                    let best = engine.best().map(|(_, s)| s).unwrap_or(0.0);
                    if term.record(f64::INFINITY, best) {
                        converged = term.stopped_by_threshold();
                        break;
                    }
                    continue;
                };
                emit_qos_violations(telemetry, samples.len(), &observation);
                if observation.all_qos_met() && samples_to_qos.is_none() {
                    samples_to_qos = Some(samples.len());
                }
                let sample_score = score.value;
                engine.record_with(suggestion.partition.clone(), sample_score, telemetry);
                samples.push(SampleRecord {
                    index: samples.len(),
                    bootstrap: false,
                    partition: suggestion.partition,
                    observation,
                    score,
                    expected_improvement: Some(suggestion.expected_improvement),
                    frozen_job: frozen.map(|(j, _)| j),
                });

                let best = engine.best().map(|(_, s)| s).unwrap_or(0.0);
                // EI-based convergence only applies once QoS has been met at
                // least once (performance mode): while jobs still violate,
                // CLITE keeps searching up to the iteration cap rather than
                // declaring a low-EI violating configuration "converged".
                // Observed improvement counts alongside model EI, so the
                // search never stops while polish moves keep paying off.
                let actual_improvement = (sample_score - best_before).max(0.0);
                if is_local {
                    if actual_improvement > 0.0 {
                        fruitless_local_moves = 0;
                    } else {
                        fruitless_local_moves += 1;
                    }
                } else {
                    fruitless_local_moves = 0;
                }
                let effective_ei = if warm_qos || samples_to_qos.is_some() {
                    suggestion.expected_improvement.max(actual_improvement)
                } else {
                    f64::INFINITY
                };
                if term.record(effective_ei, best) {
                    converged = term.stopped_by_threshold();
                    break;
                }
            }

            // ── Phase 3: confirmation ─────────────────────────────────────────
            let mut top: Vec<(Partition, f64)> =
                engine.history().iter().map(|(p, s)| (p.clone(), *s)).collect();
            top.sort_by(|a, b| b.1.total_cmp(&a.1));
            top.dedup_by(|a, b| a.0 == b.0);
            let mut best_partition = top[0].0.clone();
            let mut best_score = f64::MIN;
            let mut best_margin_ok = false;
            for (p, recorded_score) in top.into_iter().take(3) {
                // Confirmation re-observations validate against the score
                // already recorded for this partition: the commit decision
                // is the worst place to admit a counter spike.
                let maybe_validated = validated_observation(
                    server,
                    &p,
                    samples.len(),
                    Some((recorded_score, 0.0)),
                    &recovery,
                    &samples,
                    &equal_share,
                    telemetry,
                    &mut quarantined,
                )?;
                let Some((observation, score)) = maybe_validated else {
                    // Candidate never measured consistently; skip it rather
                    // than commit to (or record) an untrustworthy window.
                    continue;
                };
                emit_qos_violations(telemetry, samples.len(), &observation);
                if observation.all_qos_met() && samples_to_qos.is_none() {
                    samples_to_qos = Some(samples.len());
                }
                // Prefer candidates that clear every QoS target with a small
                // margin (re-observed min LC slack >= 1.03): a configuration
                // sitting exactly on the boundary flips with measurement noise
                // and is a poor thing to commit to.
                let margin_ok = observation
                    .lc_jobs()
                    .map(|j| j.qos_slack().unwrap_or(0.0))
                    .fold(f64::INFINITY, f64::min)
                    >= 1.03;
                let better = match (margin_ok, best_margin_ok) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => score.value > best_score,
                };
                if better {
                    best_score = score.value;
                    best_partition = p.clone();
                    best_margin_ok = margin_ok;
                }
                // Feed the corrected evidence back to the surrogate: the same
                // point with a second (independent) noisy measurement.
                engine.record_with(p.clone(), score.value, telemetry);
                samples.push(SampleRecord {
                    index: samples.len(),
                    bootstrap: false,
                    partition: p,
                    observation,
                    score,
                    expected_improvement: None,
                    frozen_job: None,
                });
            }

            if best_score >= 0.5 || resumptions >= 1 {
                break 'outer (best_partition, best_score);
            }
            resumptions += 1;
            term = self.config.termination.start(jobs);
            fruitless_local_moves = 0;
        };

        telemetry.emit(Event::Terminated {
            reason: if converged { StopReason::EiConverged } else { StopReason::BudgetExhausted },
            samples: samples.len(),
            best_score,
        });
        Ok(CliteOutcome {
            best_partition,
            best_score,
            samples,
            converged,
            infeasible_jobs: infeasible,
            samples_to_qos,
            quarantined,
            overhead: Some(telemetry.report()),
        })
    }

    /// Picks the dropout job and its frozen allocation (paper Sec. 4).
    ///
    /// Per-job "performance so far": for LC jobs the best QoS slack ratio
    /// (`target / latency`, the job that has met or is closest to meeting
    /// QoS); for BG jobs the best normalized throughput. The chosen job is
    /// frozen at its allocation **in the best-scoring sample so far** —
    /// dropout-*copy* copies dropped dimensions from the incumbent best
    /// solution (Li et al.), which keeps the frozen row compatible with a
    /// good overall partition (freezing at the job's own bootstrap
    /// extremum would starve everyone else). Dropout needs at least three
    /// co-located jobs: with two, freezing one row pins the whole
    /// partition.
    fn select_dropout<T: Testbed>(
        &self,
        server: &T,
        samples: &[SampleRecord],
        rng: &mut StdRng,
    ) -> Option<(usize, JobAllocation)> {
        let explore_prob = match self.config.dropout {
            DropoutPolicy::None => return None,
            DropoutPolicy::BestJob { explore_prob } => explore_prob,
        };
        let jobs = server.job_count();
        if jobs < 3 || samples.is_empty() {
            return None;
        }

        let job = if rng.gen_bool(explore_prob.clamp(0.0, 1.0)) {
            rng.gen_range(0..jobs)
        } else {
            // Highest best-seen performance metric.
            let mut best_job = 0;
            let mut best_metric = f64::MIN;
            for j in 0..jobs {
                let metric = samples
                    .iter()
                    .map(|s| job_metric(&s.observation.jobs[j]))
                    .fold(f64::MIN, f64::max);
                if metric > best_metric {
                    best_metric = metric;
                    best_job = j;
                }
            }
            best_job
        };

        // Dropout-copy: freeze at this job's row in the incumbent best.
        let best_sample = samples
            .iter()
            .max_by(|a, b| a.score.value.total_cmp(&b.score.value))
            .expect("samples non-empty");
        Some((job, *best_sample.partition.job(job)))
    }
}

/// Emits one [`Event::QosViolation`] per LC job missing its target in
/// `observation`.
fn emit_qos_violations(telemetry: &Telemetry<'_>, sample: usize, observation: &Observation) {
    for (job, obs) in observation.jobs.iter().enumerate() {
        if obs.qos_met == Some(false) {
            telemetry.emit(Event::QosViolation {
                sample,
                job,
                ratio: obs.qos_slack().unwrap_or(0.0),
            });
        }
    }
}

/// Per-job scalar performance used by dropout selection.
fn job_metric(obs: &clite_sim::metrics::JobObservation) -> f64 {
    match obs.qos_slack() {
        Some(slack) => slack.min(10.0),
        None => obs.normalized_perf,
    }
}

/// Donation moves around the incumbent best, priority-ordered: transfer
/// 1–3 units of a resource from a job with comfortable surplus (LC: QoS
/// slack above 15%; BG: clearly better off than the weakest job) to the
/// weakest job. These are the "resource equivalence class" exploitation
/// moves the paper credits for CLITE's BG-performance advantage — the
/// score's performance mode improves only by re-routing surplus to
/// whoever drags the geometric mean down.
///
/// Ordering uses the recipient's performance counters from the incumbent
/// observation (the same counters the real CLITE reads): capacity
/// pressure ⇒ memory capacity first; bandwidth consumption pinned at the
/// share ⇒ bandwidth; low LLC hit rate ⇒ ways; cores as the steady
/// default. Careful single-unit transfers come before larger ones within
/// a priority class.
fn donation_candidates(samples: &[SampleRecord]) -> Vec<Partition> {
    use clite_sim::resource::ResourceKind;

    let Some(best) = samples.iter().max_by(|a, b| a.score.value.total_cmp(&b.score.value)) else {
        return Vec::new();
    };
    let obs = &best.observation;
    let jobs = obs.jobs.len();
    if jobs < 2 {
        return Vec::new();
    }
    let metrics: Vec<f64> = obs.jobs.iter().map(job_metric).collect();
    // While any LC job violates QoS, repair targets the worst-violating
    // LC job; only with all targets met does the weakest job overall
    // (usually a BG job) receive donations.
    let violating_lc: Option<usize> = obs
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| j.qos_met == Some(false))
        .min_by(|(a, _), (b, _)| metrics[*a].total_cmp(&metrics[*b]))
        .map(|(i, _)| i);
    let recipient = violating_lc.unwrap_or_else(|| {
        (0..jobs).min_by(|&a, &b| metrics[a].total_cmp(&metrics[b])).expect("at least two jobs")
    });

    // Per-resource utility for the recipient, from its counters.
    let rc = &obs.jobs[recipient].counters;
    let bw_share = best.partition.fraction(recipient, ResourceKind::MemBandwidth);
    let utility = |r: ResourceKind| -> f64 {
        match r {
            ResourceKind::MemCapacity => 10.0 * rc.capacity_pressure,
            ResourceKind::MemBandwidth => {
                if rc.mem_bw_used_frac >= 0.9 * bw_share {
                    3.0
                } else {
                    0.5
                }
            }
            ResourceKind::LlcWays => 2.0 * (1.0 - rc.llc_hit_rate),
            ResourceKind::Cores => 1.5,
            ResourceKind::DiskBandwidth => {
                let disk_share = best.partition.fraction(recipient, ResourceKind::DiskBandwidth);
                if rc.disk_bw_used_frac >= 0.9 * disk_share {
                    3.0
                } else {
                    0.25
                }
            }
            ResourceKind::NetBandwidth => {
                let net_share = best.partition.fraction(recipient, ResourceKind::NetBandwidth);
                if rc.net_bw_used_frac >= 0.9 * net_share {
                    3.0
                } else {
                    0.25
                }
            }
        }
    };

    // Donors by descending surplus.
    let mut donors: Vec<usize> = (0..jobs)
        .filter(|&j| {
            j != recipient
                && match obs.jobs[j].qos_slack() {
                    Some(slack) => slack > 1.15,
                    None => metrics[j] > 1.5 * metrics[recipient],
                }
        })
        .collect();
    donors.sort_by(|&a, &b| metrics[b].total_cmp(&metrics[a]));

    let mut scored: Vec<(f64, Partition)> = Vec::new();
    for &donor in &donors {
        for r in ResourceKind::ALL {
            for amount in (1..=3u32).rev() {
                if let Ok(p) = best.partition.transfer(r, donor, recipient, amount) {
                    // Careful single-unit transfers rank above bigger ones
                    // at equal resource utility: near the feasibility
                    // ridge a 3-unit donation usually breaks the donor.
                    scored.push((utility(r) - 0.01 * f64::from(amount), p));
                }
            }
        }
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    scored.into_iter().map(|(_, p)| p).collect()
}

/// Stable snake_case label for a [`SimError`] fault variant, used as the
/// `fault` field of [`Event::FaultInjected`] and the matching metric label.
pub(crate) fn fault_kind(e: &SimError) -> &'static str {
    match e {
        SimError::WindowDropped { .. } => "window_dropped",
        SimError::WindowTimeout { .. } => "window_timeout",
        SimError::EnforceFault { .. } => "enforce_fault",
        SimError::NodeCrashed { .. } => "node_crashed",
        _ => "other",
    }
}

/// The SafeFallback partition: the best-scoring sample so far that met
/// every LC job's QoS target, else the equal-share bootstrap partition.
/// The boolean reports which it was.
fn safe_fallback(samples: &[SampleRecord], equal_share: &Partition) -> (Partition, bool) {
    samples
        .iter()
        .filter(|s| s.observation.all_qos_met())
        .max_by(|a, b| a.score.value.total_cmp(&b.score.value))
        .map_or_else(|| (equal_share.clone(), false), |s| (s.partition.clone(), true))
}

/// Gives up on the search: re-enforces the safe fallback (best-effort —
/// on a crashed node even that fails) and builds the typed
/// [`CliteError::Degraded`] the run aborts with.
fn engage_fallback<T: Testbed>(
    server: &mut T,
    sample: usize,
    samples: &[SampleRecord],
    equal_share: &Partition,
    reason: SimError,
    telemetry: &Telemetry<'_>,
) -> CliteError {
    let (fallback, qos_feasible) = safe_fallback(samples, equal_share);
    let enforced = server.enforce(&fallback).is_ok();
    telemetry.emit(Event::FallbackEngaged { sample, qos_feasible, enforced });
    CliteError::Degraded { fallback, reason }
}

/// Observes `partition` through the typed fault path: transient faults
/// (dropped/stuck windows, enforcement glitches) are retried up to
/// `recovery.max_retries` times with window-counted backoff; exhausted
/// retries and node crashes engage the safe fallback and surface as
/// [`CliteError::Degraded`]. Contract violations (mismatched partitions)
/// are returned as plain [`CliteError::Sim`] — they are controller bugs,
/// not conditions the fallback could mend.
fn observe_resilient<T: Testbed>(
    server: &mut T,
    partition: &Partition,
    sample: usize,
    recovery: &RecoveryConfig,
    samples: &[SampleRecord],
    equal_share: &Partition,
    telemetry: &Telemetry<'_>,
) -> Result<Observation, CliteError> {
    let mut attempt = 0usize;
    loop {
        match telemetry.time(Phase::Observe, || server.try_observe(partition)) {
            Ok(observation) => return Ok(observation),
            Err(fault) if fault.is_transient_fault() => {
                telemetry
                    .emit(Event::FaultInjected { sample, fault: fault_kind(&fault).to_owned() });
                if attempt >= recovery.max_retries {
                    return Err(engage_fallback(
                        server,
                        sample,
                        samples,
                        equal_share,
                        fault,
                        telemetry,
                    ));
                }
                attempt += 1;
                telemetry.emit(Event::ObservationRetried { sample, attempt });
                // Capped exponential backoff (+ deterministic jitter):
                // give a glitching measurement path time to settle before
                // burning another retry. The waited windows advance the
                // clock like any other overhead.
                for _ in 0..recovery.backoff_for(attempt) {
                    server.advance_window();
                }
            }
            Err(fault) if fault.is_node_crash() => {
                telemetry
                    .emit(Event::FaultInjected { sample, fault: fault_kind(&fault).to_owned() });
                return Err(engage_fallback(
                    server,
                    sample,
                    samples,
                    equal_share,
                    fault,
                    telemetry,
                ));
            }
            Err(e) => return Err(CliteError::Sim(e)),
        }
    }
}

/// [`observe_resilient`] plus the outlier guard: when the measured Eq. 3
/// score deviates from `predicted` (posterior mean, posterior σ) by more
/// than the configured threshold, the window is re-observed. A flagged
/// measurement that *reproduces* (two scores agree within tolerance) is
/// accepted — the surrogate was wrong, not the counters. One that does not
/// is quarantined (counted, never recorded) and replaced by its
/// re-observation. Returns `Ok(None)` when retries run out without a
/// trustworthy measurement — the caller should quarantine the point.
#[allow(clippy::too_many_arguments)]
fn validated_observation<T: Testbed>(
    server: &mut T,
    partition: &Partition,
    sample: usize,
    predicted: Option<(f64, f64)>,
    recovery: &RecoveryConfig,
    samples: &[SampleRecord],
    equal_share: &Partition,
    telemetry: &Telemetry<'_>,
    quarantined: &mut usize,
) -> Result<Option<(Observation, ScoreBreakdown)>, CliteError> {
    let mut observation =
        observe_resilient(server, partition, sample, recovery, samples, equal_share, telemetry)?;
    let mut score = telemetry.time(Phase::Score, || score_observation(&observation));
    let (Some(threshold), Some((predicted_mean, predicted_std))) =
        (recovery.outlier_threshold, predicted)
    else {
        return Ok(Some((observation, score)));
    };
    let sigma = predicted_std.max(recovery.sigma_floor);
    let flagged = |s: f64| (s - predicted_mean).abs() / sigma > threshold;
    if !flagged(score.value) {
        return Ok(Some((observation, score)));
    }
    for attempt in 1..=recovery.max_retries {
        telemetry.emit(Event::ObservationRetried { sample, attempt });
        let re_observation = observe_resilient(
            server,
            partition,
            sample,
            recovery,
            samples,
            equal_share,
            telemetry,
        )?;
        let re_score = telemetry.time(Phase::Score, || score_observation(&re_observation));
        let agree = (re_score.value - score.value).abs()
            <= recovery.agree_tol.max(0.05 * score.value.abs());
        if agree {
            // Repeatable: trust the measurement over the model.
            return Ok(Some((observation, score)));
        }
        // The two windows disagree: the earlier one was the outlier.
        telemetry.emit(Event::SampleQuarantined {
            sample,
            score: score.value,
            predicted: predicted_mean,
            sigma,
        });
        *quarantined += 1;
        observation = re_observation;
        score = re_score;
        if !flagged(score.value) {
            return Ok(Some((observation, score)));
        }
    }
    // Still flagged, never reproduced: nothing here is trustworthy.
    telemetry.emit(Event::SampleQuarantined {
        sample,
        score: score.value,
        predicted: predicted_mean,
        sigma,
    });
    *quarantined += 1;
    Ok(None)
}

/// Re-enforces a run's best partition and measures one window under it —
/// what callers do right after a search to leave the node in its committed
/// state. Small helper shared by the adaptive runner and experiments.
///
/// # Errors
///
/// Propagates enforcement rejections and window faults as [`SimError`];
/// callers surviving faults should treat transient errors as retryable.
pub fn enforce_best<T: Testbed>(
    server: &mut T,
    best: &Partition,
) -> Result<clite_sim::metrics::Observation, SimError> {
    server.try_observe(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    fn server(jobs: Vec<JobSpec>, seed: u64) -> Server {
        Server::new(ResourceCatalog::testbed(), jobs, seed).unwrap()
    }

    fn easy_mix() -> Vec<JobSpec> {
        vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 0.2),
            JobSpec::background(WorkloadId::Blackscholes),
        ]
    }

    #[test]
    fn meets_qos_on_easy_mix() {
        let mut s = server(easy_mix(), 1);
        let outcome = CliteController::default().run(&mut s).unwrap();
        assert!(outcome.infeasible_jobs.is_empty());
        assert!(outcome.qos_met(), "best score {}", outcome.best_score);
        assert!(outcome.samples_to_qos.is_some());
        // Paper: fewer than ~30 samples even with several jobs.
        assert!(outcome.samples_used() <= 80, "used {}", outcome.samples_used());
    }

    #[test]
    fn bootstrap_comes_first_and_counts_jobs_plus_one() {
        let mut s = server(easy_mix(), 2);
        let outcome = CliteController::default().run(&mut s).unwrap();
        let boot: Vec<_> = outcome.samples.iter().filter(|r| r.bootstrap).collect();
        assert_eq!(boot.len(), 4, "N_jobs + 1 bootstrap samples");
        assert!(outcome.samples[..4].iter().all(|r| r.bootstrap));
        assert!(outcome.samples[4..].iter().all(|r| !r.bootstrap));
    }

    #[test]
    fn infeasible_job_detected_and_run_stops_early() {
        // Nine loaded LC jobs: each job's maximum extremum is only 2 cores
        // (everyone else keeps one), so the heavyweight jobs fail QoS even
        // with their own maximum allocation — individually infeasible, the
        // case the paper ejects right after bootstrapping.
        let mix = vec![
            JobSpec::latency_critical(WorkloadId::ImgDnn, 1.0),
            JobSpec::latency_critical(WorkloadId::Masstree, 1.0),
            JobSpec::latency_critical(WorkloadId::Memcached, 1.0),
            JobSpec::latency_critical(WorkloadId::Specjbb, 1.0),
            JobSpec::latency_critical(WorkloadId::Xapian, 1.0),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 1.0),
            JobSpec::latency_critical(WorkloadId::Masstree, 1.0),
            JobSpec::latency_critical(WorkloadId::Specjbb, 1.0),
            JobSpec::latency_critical(WorkloadId::Xapian, 1.0),
        ];
        let mut s = server(mix, 3);
        let outcome = CliteController::default().run(&mut s).unwrap();
        assert!(!outcome.infeasible_jobs.is_empty());
        assert!(!outcome.converged);
        // Stopped right after bootstrap: N_jobs + 1 samples.
        assert_eq!(outcome.samples_used(), 10);
    }

    #[test]
    fn improves_bg_performance_after_meeting_qos() {
        // The paper's key differentiator: CLITE keeps optimizing BG
        // performance after QoS is met.
        let mut s = server(easy_mix(), 4);
        let outcome = CliteController::default().run(&mut s).unwrap();
        let first_qos_sample = outcome.samples_to_qos.unwrap();
        let first_qos_bg = outcome.samples[first_qos_sample].observation.mean_bg_perf().unwrap();
        let best_bg = outcome.best_bg_perf().unwrap();
        assert!(
            best_bg >= first_qos_bg,
            "best BG perf {best_bg} must not regress from first-QoS {first_qos_bg}"
        );
        assert!(outcome.best_score > 0.5);
    }

    #[test]
    fn dropout_freezes_rows_in_search_samples() {
        let mut s = server(easy_mix(), 5);
        let outcome = CliteController::default().run(&mut s).unwrap();
        let frozen_used =
            outcome.samples.iter().filter(|r| !r.bootstrap).any(|r| r.frozen_job.is_some());
        assert!(frozen_used, "dropout-copy should engage with 3 co-located jobs");
    }

    #[test]
    fn no_dropout_with_two_jobs() {
        let mix = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
            JobSpec::background(WorkloadId::Swaptions),
        ];
        let mut s = server(mix, 6);
        let outcome = CliteController::default().run(&mut s).unwrap();
        assert!(outcome.samples.iter().all(|r| r.frozen_job.is_none()));
    }

    #[test]
    fn deterministic_with_same_seeds() {
        let run = || {
            let mut s = server(easy_mix(), 7);
            CliteController::new(CliteConfig::default().with_seed(99)).run(&mut s).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_partition, b.best_partition);
        assert_eq!(a.samples_used(), b.samples_used());
    }

    #[test]
    fn warm_run_reaches_qos_in_fewer_windows_than_cold() {
        use clite_store::ObservationStore;

        let store = ObservationStore::in_memory().into_shared();
        let controller = CliteController::default();
        let telemetry = Telemetry::disabled();

        let mut s1 = server(easy_mix(), 9);
        let cold = controller.run_with_store(&mut s1, &store, &telemetry).unwrap();
        assert!(cold.qos_met());

        // Same mix, fresh server: the second invocation must hit the store
        // and converge in strictly fewer observation windows.
        let mut s2 = server(easy_mix(), 9);
        let warm = controller.run_with_store(&mut s2, &store, &telemetry).unwrap();
        assert!(warm.qos_met());
        {
            let guard = store.lock().unwrap();
            assert_eq!(guard.stats().hits, 1);
            assert_eq!(guard.stats().misses, 1);
        }
        assert!(
            warm.samples_used() < cold.samples_used(),
            "warm {} windows must beat cold {}",
            warm.samples_used(),
            cold.samples_used()
        );
        // The warm run skipped bootstrap entirely.
        assert!(warm.samples.iter().all(|r| !r.bootstrap));
    }

    #[test]
    fn warm_runs_are_deterministic() {
        use clite_store::ObservationStore;

        let run_pair = || {
            let store = ObservationStore::in_memory().into_shared();
            let controller = CliteController::default();
            let telemetry = Telemetry::disabled();
            let mut s1 = server(easy_mix(), 12);
            controller.run_with_store(&mut s1, &store, &telemetry).unwrap();
            let mut s2 = server(easy_mix(), 12);
            controller.run_with_store(&mut s2, &store, &telemetry).unwrap()
        };
        let a = run_pair();
        let b = run_pair();
        assert_eq!(a.best_partition, b.best_partition);
        assert_eq!(a.samples_used(), b.samples_used());
        assert_eq!(
            a.samples.iter().map(|r| r.partition.clone()).collect::<Vec<_>>(),
            b.samples.iter().map(|r| r.partition.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn store_misses_on_different_mix_and_runs_cold() {
        use clite_store::ObservationStore;

        let store = ObservationStore::in_memory().into_shared();
        let controller = CliteController::default();
        let telemetry = Telemetry::disabled();
        let mut s1 = server(easy_mix(), 10);
        controller.run_with_store(&mut s1, &store, &telemetry).unwrap();

        let other = vec![
            JobSpec::latency_critical(WorkloadId::Xapian, 0.2),
            JobSpec::background(WorkloadId::Freqmine),
        ];
        let mut s2 = server(other, 10);
        let outcome = controller.run_with_store(&mut s2, &store, &telemetry).unwrap();
        // Cold path: full bootstrap ran (N_jobs + 1 bootstrap samples).
        assert_eq!(outcome.samples.iter().filter(|r| r.bootstrap).count(), 3);
        let guard = store.lock().unwrap();
        assert_eq!(guard.stats().hits, 0);
        assert_eq!(guard.stats().misses, 2);
        assert_eq!(guard.mix_count(), 2);
    }

    #[test]
    fn lc_only_mix_optimizes_past_qos() {
        let mix = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
            JobSpec::latency_critical(WorkloadId::Masstree, 0.3),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        ];
        let mut s = server(mix, 8);
        let outcome = CliteController::default().run(&mut s).unwrap();
        assert!(outcome.qos_met(), "3 LC jobs at 30% load are co-locatable");
        assert!(outcome.best_score > 0.5);
    }
}
