//! Controller configuration with the paper's defaults.

use clite_bo::engine::BoConfig;
use clite_bo::termination::Termination;
use serde::Serialize;

/// How the dropout-copy dimensionality reduction picks the job to freeze
/// (paper Sec. 4, "Mitigating High Dimensionality Limitations").
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum DropoutPolicy {
    /// No dropout: every job's allocation is searched every iteration
    /// (ablation baseline).
    None,
    /// The paper's policy: freeze the LC job that is performing best so far
    /// (has met or is closest to meeting its QoS) at its best-seen
    /// allocation; with probability `explore_prob` freeze a random LC job
    /// instead (the paper notes a "small probabilistic factor" in the
    /// choice, visible as CLITE's small residual run-to-run variability in
    /// Fig. 11).
    BestJob {
        /// Probability of freezing a uniformly random LC job instead of the
        /// best-performing one.
        explore_prob: f64,
    },
}

impl DropoutPolicy {
    /// The paper's default policy (drop one job, small exploration factor).
    #[must_use]
    pub fn paper_default() -> Self {
        DropoutPolicy::BestJob { explore_prob: 0.1 }
    }
}

/// Full CLITE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CliteConfig {
    /// Bayesian-optimization engine settings (kernel, acquisition ζ,
    /// acquisition-maximizer budget, hyperparameter refresh cadence).
    pub bo: BoConfig,
    /// Expected-improvement termination condition.
    pub termination: Termination,
    /// Dropout-copy policy.
    pub dropout: DropoutPolicy,
    /// RNG seed for the controller's own stochastic choices (dropout
    /// exploration, acquisition restarts).
    pub seed: u64,
}

impl Default for CliteConfig {
    fn default() -> Self {
        Self {
            bo: BoConfig::default(),
            termination: Termination::default(),
            dropout: DropoutPolicy::paper_default(),
            seed: 0x000C_117E,
        }
    }
}

impl CliteConfig {
    /// Returns a copy with a different seed (run-to-run variability
    /// studies re-seed everything else identically).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with dropout disabled (ablation).
    #[must_use]
    pub fn without_dropout(mut self) -> Self {
        self.dropout = DropoutPolicy::None;
        self
    }

    /// Returns a copy with a different termination condition.
    #[must_use]
    pub fn with_termination(mut self, termination: Termination) -> Self {
        self.termination = termination;
        self
    }

    /// Returns a copy with different BO settings.
    #[must_use]
    pub fn with_bo(mut self, bo: BoConfig) -> Self {
        self.bo = bo;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CliteConfig::default();
        assert_eq!(c.dropout, DropoutPolicy::BestJob { explore_prob: 0.1 });
        assert!((c.termination.ei_threshold - 0.03).abs() < 1e-12, "job-scaled EI threshold");
    }

    #[test]
    fn builder_methods_compose() {
        let c = CliteConfig::default().with_seed(9).without_dropout();
        assert_eq!(c.seed, 9);
        assert_eq!(c.dropout, DropoutPolicy::None);
    }
}
