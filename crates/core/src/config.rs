//! Controller configuration with the paper's defaults.

use clite_bo::engine::BoConfig;
use clite_bo::termination::Termination;
use serde::Serialize;

/// How the dropout-copy dimensionality reduction picks the job to freeze
/// (paper Sec. 4, "Mitigating High Dimensionality Limitations").
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum DropoutPolicy {
    /// No dropout: every job's allocation is searched every iteration
    /// (ablation baseline).
    None,
    /// The paper's policy: freeze the LC job that is performing best so far
    /// (has met or is closest to meeting its QoS) at its best-seen
    /// allocation; with probability `explore_prob` freeze a random LC job
    /// instead (the paper notes a "small probabilistic factor" in the
    /// choice, visible as CLITE's small residual run-to-run variability in
    /// Fig. 11).
    BestJob {
        /// Probability of freezing a uniformly random LC job instead of the
        /// best-performing one.
        explore_prob: f64,
    },
}

impl DropoutPolicy {
    /// The paper's default policy (drop one job, small exploration factor).
    #[must_use]
    pub fn paper_default() -> Self {
        DropoutPolicy::BestJob { explore_prob: 0.1 }
    }
}

/// Fault-recovery policy: how the controller reacts to faulted windows
/// and counter outliers (the degradation ladder's guard → retry →
/// quarantine → fallback rungs).
///
/// The retry/fallback machinery for *typed testbed faults* (dropped or
/// stuck windows, transient enforcement failures, node crashes) is always
/// active — it only runs when a fault actually surfaces, so fault-free
/// runs are bit-for-bit unchanged. The *outlier guard* re-observes
/// suspicious-but-successful windows, which spends extra windows, so it is
/// opt-in via [`RecoveryConfig::outlier_threshold`] (see
/// [`RecoveryConfig::hardened`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryConfig {
    /// Maximum re-observations of one sample before the controller gives
    /// up and engages the safe fallback (for faults) or quarantines the
    /// point (for unsettled outliers).
    pub max_retries: usize,
    /// Base of the exponential backoff spent before retry `n`: the retry
    /// waits `backoff_windows << (n-1)` windows (capped by
    /// [`RecoveryConfig::backoff_cap`], plus jitter), counting them as
    /// overhead. `0` disables backoff entirely.
    pub backoff_windows: usize,
    /// Cap on the exponential term, in windows, so a long retry chain
    /// cannot stall a search for exponentially many windows.
    pub backoff_cap: usize,
    /// Maximum deterministic jitter added to each backoff, in windows: a
    /// seed-derived value in `0..=jitter_windows` decorrelates retry
    /// storms across concurrent searches. `0` (the default) adds none,
    /// keeping default-config schedules free of any jitter stream.
    pub jitter_windows: usize,
    /// Seed for the jitter stream (a pure function of this seed and the
    /// attempt number — never wall clock or a shared RNG).
    pub jitter_seed: u64,
    /// Outlier guard threshold in posterior standard deviations: an
    /// observation whose Eq. 3 score deviates from the surrogate's
    /// posterior mean by more than this many σ is re-observed before it
    /// may enter the GP history or the store. `None` disables the guard.
    pub outlier_threshold: Option<f64>,
    /// Two scores within this absolute tolerance (or 5% relative) count
    /// as *agreeing*: a flagged observation that reproduces under
    /// re-observation is accepted — the surrogate was wrong, not the
    /// counters.
    pub agree_tol: f64,
    /// Floor on the posterior σ used by the guard, so a near-certain
    /// surrogate cannot flag ordinary measurement noise as an outlier.
    pub sigma_floor: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_windows: 1,
            backoff_cap: 8,
            jitter_windows: 0,
            jitter_seed: 0,
            outlier_threshold: None,
            agree_tol: 0.1,
            sigma_floor: 0.02,
        }
    }
}

impl RecoveryConfig {
    /// The chaos-hardened policy: retries as per default plus the outlier
    /// guard at 5σ — the configuration the `--faults` chaos mode and the
    /// chaos experiments run under.
    #[must_use]
    pub fn hardened() -> Self {
        Self { outlier_threshold: Some(5.0), ..Self::default() }
    }

    /// Whether the outlier guard is active.
    #[must_use]
    pub fn guard_enabled(&self) -> bool {
        self.outlier_threshold.is_some()
    }

    /// Windows of backoff to wait before retry `attempt` (1-based):
    /// capped exponential (`backoff_windows << (attempt-1)`, at most
    /// [`RecoveryConfig::backoff_cap`]) plus deterministic seed-derived
    /// jitter in `0..=jitter_windows`. A pure function of the config and
    /// the attempt number, so retry schedules replay byte-identically.
    #[must_use]
    pub fn backoff_for(&self, attempt: usize) -> usize {
        if attempt == 0 || self.backoff_windows == 0 {
            return 0;
        }
        let shift = (attempt - 1).min(usize::BITS as usize - 1) as u32;
        let exp = self
            .backoff_windows
            .checked_shl(shift)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap.max(self.backoff_windows));
        let jitter = if self.jitter_windows == 0 {
            0
        } else {
            // SplitMix64 finalizer over (seed, attempt): well-mixed but
            // reproducible, mirroring the fault-injection streams.
            let mut z = self.jitter_seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as usize % (self.jitter_windows + 1)
        };
        exp + jitter
    }
}

/// Full CLITE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CliteConfig {
    /// Bayesian-optimization engine settings (kernel, acquisition ζ,
    /// acquisition-maximizer budget, hyperparameter refresh cadence).
    pub bo: BoConfig,
    /// Expected-improvement termination condition.
    pub termination: Termination,
    /// Dropout-copy policy.
    pub dropout: DropoutPolicy,
    /// Fault-recovery and outlier-guard policy.
    pub recovery: RecoveryConfig,
    /// RNG seed for the controller's own stochastic choices (dropout
    /// exploration, acquisition restarts).
    pub seed: u64,
}

impl Default for CliteConfig {
    fn default() -> Self {
        Self {
            bo: BoConfig::default(),
            termination: Termination::default(),
            dropout: DropoutPolicy::paper_default(),
            recovery: RecoveryConfig::default(),
            seed: 0x000C_117E,
        }
    }
}

impl CliteConfig {
    /// Returns a copy with a different seed (run-to-run variability
    /// studies re-seed everything else identically).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with dropout disabled (ablation).
    #[must_use]
    pub fn without_dropout(mut self) -> Self {
        self.dropout = DropoutPolicy::None;
        self
    }

    /// Returns a copy with a different termination condition.
    #[must_use]
    pub fn with_termination(mut self, termination: Termination) -> Self {
        self.termination = termination;
        self
    }

    /// Returns a copy with different BO settings.
    #[must_use]
    pub fn with_bo(mut self, bo: BoConfig) -> Self {
        self.bo = bo;
        self
    }

    /// Returns a copy with a different fault-recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Returns a copy running the chaos-hardened recovery policy
    /// ([`RecoveryConfig::hardened`]): outlier guard on at 5σ.
    #[must_use]
    pub fn hardened(self) -> Self {
        self.with_recovery(RecoveryConfig::hardened())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CliteConfig::default();
        assert_eq!(c.dropout, DropoutPolicy::BestJob { explore_prob: 0.1 });
        assert!((c.termination.ei_threshold - 0.03).abs() < 1e-12, "job-scaled EI threshold");
    }

    #[test]
    fn builder_methods_compose() {
        let c = CliteConfig::default().with_seed(9).without_dropout();
        assert_eq!(c.seed, 9);
        assert_eq!(c.dropout, DropoutPolicy::None);
    }

    #[test]
    fn default_recovery_keeps_guard_off_but_retries_on() {
        let c = CliteConfig::default();
        assert!(!c.recovery.guard_enabled(), "guard must be opt-in (costs extra windows)");
        assert!(c.recovery.max_retries > 0, "fault retries are always armed");
        let h = CliteConfig::default().hardened();
        assert_eq!(h.recovery.outlier_threshold, Some(5.0));
    }

    #[test]
    fn backoff_grows_exponentially_with_cap_and_no_default_jitter() {
        let r = RecoveryConfig::default();
        assert_eq!(r.backoff_for(0), 0);
        // Attempts 1 and 2 match the old linear schedule (1, 2 windows),
        // so default-config fault paths that never chain three transient
        // faults replay byte-identically to the pre-exponential code.
        assert_eq!(r.backoff_for(1), 1);
        assert_eq!(r.backoff_for(2), 2);
        assert_eq!(r.backoff_for(3), 4);
        assert_eq!(r.backoff_for(4), 8);
        assert_eq!(r.backoff_for(5), 8, "capped at backoff_cap");
        assert_eq!(r.backoff_for(64), 8, "no overflow at absurd attempts");

        let none = RecoveryConfig { backoff_windows: 0, ..RecoveryConfig::default() };
        assert_eq!(none.backoff_for(3), 0, "zero base disables backoff");
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let r =
            RecoveryConfig { jitter_windows: 3, jitter_seed: 0xFEED, ..RecoveryConfig::default() };
        for attempt in 1..=8 {
            let a = r.backoff_for(attempt);
            let b = r.backoff_for(attempt);
            assert_eq!(a, b, "jitter must replay");
            let base = RecoveryConfig::default().backoff_for(attempt);
            assert!((base..=base + 3).contains(&a), "jitter bounded at attempt {attempt}");
        }
        let other = RecoveryConfig { jitter_seed: 0xBEEF, ..r.clone() };
        assert!(
            (1..=8).any(|n| other.backoff_for(n) != r.backoff_for(n)),
            "different seeds should decorrelate some attempt"
        );
    }
}
