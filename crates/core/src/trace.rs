//! Per-sample records produced by the controller and consumed by the
//! experiment harness (allocation-over-time plots, convergence curves,
//! overhead accounting).

use serde::Serialize;

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;
use clite_telemetry::OverheadReport;

use crate::score::ScoreBreakdown;

/// One evaluated configuration in a controller run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SampleRecord {
    /// 0-based sample index (bootstrap samples come first).
    pub index: usize,
    /// Whether this sample belongs to the bootstrap set.
    pub bootstrap: bool,
    /// The partition that was enforced.
    pub partition: Partition,
    /// The full observation window.
    pub observation: Observation,
    /// The Eq. 3 score with its per-job components.
    pub score: ScoreBreakdown,
    /// Expected improvement the engine predicted for this sample (`None`
    /// for bootstrap samples, which are not acquisition-driven).
    pub expected_improvement: Option<f64>,
    /// Which job was frozen by dropout-copy for this sample, if any.
    pub frozen_job: Option<usize>,
}

/// Outcome of one controller run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CliteOutcome {
    /// The best-scoring partition found.
    pub best_partition: Partition,
    /// Its score.
    pub best_score: f64,
    /// Every evaluated sample in order.
    pub samples: Vec<SampleRecord>,
    /// Whether the EI termination condition fired (vs the iteration cap).
    pub converged: bool,
    /// LC job indices that failed QoS even under their maximum-allocation
    /// bootstrap extremum — the co-location is infeasible for them and the
    /// paper would schedule them elsewhere immediately.
    pub infeasible_jobs: Vec<usize>,
    /// 0-based index of the first sample where every LC job met QoS
    /// (`None` if never).
    pub samples_to_qos: Option<usize>,
    /// Observations rejected by the outlier guard. Quarantined windows
    /// never enter the GP history, the sample trace, or the store — but
    /// their time was spent, so they count in
    /// [`samples_used`](CliteOutcome::samples_used).
    pub quarantined: usize,
    /// Phase-timing profile of the run (the paper's Fig. 15b breakdown);
    /// populated by [`CliteController::run_with`](crate::controller::CliteController::run_with).
    pub overhead: Option<OverheadReport>,
}

impl CliteOutcome {
    /// Whether the best sample met every LC job's QoS.
    #[must_use]
    pub fn qos_met(&self) -> bool {
        self.best_score >= 0.5 && self.infeasible_jobs.is_empty()
    }

    /// Total number of configurations sampled (the paper's Fig. 15a
    /// overhead metric). Includes quarantined windows: their measurements
    /// were discarded, but their observation time was spent.
    #[must_use]
    pub fn samples_used(&self) -> usize {
        self.samples.len() + self.quarantined
    }

    /// Mean BG performance of the best sample (`None` if no BG jobs).
    ///
    /// "Best" means the sample whose partition is [`best_partition`]
    /// (re-observed samples of the same partition use the highest-scoring
    /// window), so this always describes the configuration the run
    /// actually commits to — not merely the highest-scoring sample, which
    /// can be a different partition when the confirmation pass demotes a
    /// lucky incumbent.
    ///
    /// [`best_partition`]: CliteOutcome::best_partition
    #[must_use]
    pub fn best_bg_perf(&self) -> Option<f64> {
        self.samples
            .iter()
            .filter(|s| s.partition == self.best_partition)
            .max_by(|a, b| a.score.value.total_cmp(&b.score.value))
            .or_else(|| {
                // Defensive: an outcome assembled with a best_partition
                // absent from its trace falls back to the best sample.
                self.samples.iter().max_by(|a, b| a.score.value.total_cmp(&b.score.value))
            })
            .and_then(|s| s.observation.mean_bg_perf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{ScoreBreakdown, ScoreMode};
    use clite_sim::counters::CounterSample;
    use clite_sim::metrics::JobObservation;
    use clite_sim::resource::ResourceCatalog;
    use clite_sim::workload::{JobClass, WorkloadId};

    fn bg_observation(perf: f64) -> Observation {
        Observation {
            time_s: 0.0,
            window_s: 2.0,
            jobs: vec![JobObservation {
                workload: WorkloadId::Blackscholes,
                class: JobClass::Background,
                latency_p95_us: 100.0,
                offered_qps: 0.0,
                normalized_perf: perf,
                qos_met: None,
                qos_target_us: None,
                iso_latency_p95_us: None,
                counters: CounterSample {
                    cpu_utilization: 0.5,
                    llc_hit_rate: 0.5,
                    mem_bw_used_frac: 0.2,
                    ipc_proxy: 0.8,
                    capacity_pressure: 0.0,
                    disk_bw_used_frac: 0.0,
                    net_bw_used_frac: 0.0,
                },
            }],
        }
    }

    fn record(index: usize, partition: Partition, score: f64, bg_perf: f64) -> SampleRecord {
        SampleRecord {
            index,
            bootstrap: false,
            partition,
            observation: bg_observation(bg_perf),
            score: ScoreBreakdown {
                value: score,
                mode: ScoreMode::QosMet,
                lc_ratios: vec![],
                bg_ratios: vec![bg_perf],
            },
            expected_improvement: None,
            frozen_job: None,
        }
    }

    /// Regression: two samples tie on score but hold different partitions.
    /// `best_bg_perf` must describe the sample matching `best_partition`,
    /// not whichever tied sample a max-scan happens to return.
    #[test]
    fn best_bg_perf_follows_best_partition_on_score_ties() {
        let catalog = ResourceCatalog::testbed();
        let committed = Partition::equal_share(&catalog, 2).unwrap();
        let other = Partition::max_for_job(&catalog, 2, 0).unwrap();
        assert_ne!(committed, other);

        // The non-committed partition ties on score (and is listed first,
        // which is where a plain max-scan would stop) but has different
        // BG performance.
        let outcome = CliteOutcome {
            best_partition: committed.clone(),
            best_score: 0.8,
            samples: vec![record(0, other, 0.8, 0.9), record(1, committed, 0.8, 0.6)],
            converged: true,
            infeasible_jobs: vec![],
            samples_to_qos: Some(0),
            quarantined: 0,
            overhead: None,
        };
        let bg = outcome.best_bg_perf().unwrap();
        assert!(
            (bg - 0.6).abs() < 1e-12,
            "must report the committed partition's BG perf, got {bg}"
        );
    }

    /// Among several observations of the committed partition, the
    /// highest-scoring window wins.
    #[test]
    fn best_bg_perf_picks_best_window_of_committed_partition() {
        let catalog = ResourceCatalog::testbed();
        let committed = Partition::equal_share(&catalog, 2).unwrap();
        let outcome = CliteOutcome {
            best_partition: committed.clone(),
            best_score: 0.85,
            samples: vec![record(0, committed.clone(), 0.7, 0.4), record(1, committed, 0.85, 0.7)],
            converged: true,
            infeasible_jobs: vec![],
            samples_to_qos: Some(0),
            quarantined: 0,
            overhead: None,
        };
        assert!((outcome.best_bg_perf().unwrap() - 0.7).abs() < 1e-12);
    }
}
