//! Per-sample records produced by the controller and consumed by the
//! experiment harness (allocation-over-time plots, convergence curves,
//! overhead accounting).

use serde::Serialize;

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;

use crate::score::ScoreBreakdown;

/// One evaluated configuration in a controller run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SampleRecord {
    /// 0-based sample index (bootstrap samples come first).
    pub index: usize,
    /// Whether this sample belongs to the bootstrap set.
    pub bootstrap: bool,
    /// The partition that was enforced.
    pub partition: Partition,
    /// The full observation window.
    pub observation: Observation,
    /// The Eq. 3 score with its per-job components.
    pub score: ScoreBreakdown,
    /// Expected improvement the engine predicted for this sample (`None`
    /// for bootstrap samples, which are not acquisition-driven).
    pub expected_improvement: Option<f64>,
    /// Which job was frozen by dropout-copy for this sample, if any.
    pub frozen_job: Option<usize>,
}

/// Outcome of one controller run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CliteOutcome {
    /// The best-scoring partition found.
    pub best_partition: Partition,
    /// Its score.
    pub best_score: f64,
    /// Every evaluated sample in order.
    pub samples: Vec<SampleRecord>,
    /// Whether the EI termination condition fired (vs the iteration cap).
    pub converged: bool,
    /// LC job indices that failed QoS even under their maximum-allocation
    /// bootstrap extremum — the co-location is infeasible for them and the
    /// paper would schedule them elsewhere immediately.
    pub infeasible_jobs: Vec<usize>,
    /// 0-based index of the first sample where every LC job met QoS
    /// (`None` if never).
    pub samples_to_qos: Option<usize>,
}

impl CliteOutcome {
    /// Whether the best sample met every LC job's QoS.
    #[must_use]
    pub fn qos_met(&self) -> bool {
        self.best_score >= 0.5 && self.infeasible_jobs.is_empty()
    }

    /// Total number of configurations sampled (the paper's Fig. 15a
    /// overhead metric).
    #[must_use]
    pub fn samples_used(&self) -> usize {
        self.samples.len()
    }

    /// Mean BG performance of the best sample (`None` if no BG jobs).
    #[must_use]
    pub fn best_bg_perf(&self) -> Option<f64> {
        self.samples
            .iter()
            .max_by(|a, b| a.score.value.total_cmp(&b.score.value))
            .and_then(|s| s.observation.mean_bg_perf())
    }
}
