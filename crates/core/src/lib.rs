//! # clite — the CLITE controller (HPCA 2020)
//!
//! CLITE co-locates multiple latency-critical (LC) jobs with multiple
//! throughput-oriented background (BG) jobs on one server by partitioning
//! its shared resources (cores, LLC ways, memory bandwidth, memory
//! capacity, disk bandwidth) with Bayesian Optimization, pursuing two
//! objectives simultaneously:
//!
//! 1. **meet every LC job's QoS tail-latency target**, and
//! 2. **maximize the performance of every BG job** (or of the LC jobs past
//!    their targets, when no BG jobs are co-located).
//!
//! This crate wires the pieces together:
//!
//! * [`score`] — the paper's two-mode normalized score function (Eq. 3);
//! * [`config::CliteConfig`] — ζ, termination threshold, dropout policy,
//!   sample budget, all with the paper's defaults;
//! * [`controller::CliteController`] — bootstrap → BO search loop with
//!   dropout-copy → EI-based termination, plus infeasible-job ejection;
//! * [`adaptive`] — steady-state monitoring and re-invocation on load
//!   change (the paper's Fig. 16 behaviour);
//! * [`trace`] — per-sample records the experiment harness consumes.
//!
//! ## Example
//!
//! ```
//! use clite::config::CliteConfig;
//! use clite::controller::CliteController;
//! use clite_sim::prelude::*;
//!
//! let jobs = vec![
//!     JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
//!     JobSpec::latency_critical(WorkloadId::ImgDnn, 0.2),
//!     JobSpec::background(WorkloadId::Streamcluster),
//! ];
//! let mut server = Server::new(ResourceCatalog::testbed(), jobs, 1)?;
//! let controller = CliteController::new(CliteConfig::default());
//! let outcome = controller.run(&mut server)?;
//! assert!(outcome.best_score > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod controller;
pub mod score;
pub mod trace;

mod error;

pub use error::CliteError;

// Store types appear in controller signatures; re-export them so callers
// don't need a direct clite-store dependency for the common path.
pub use clite_store::{MixSignature, ObservationStore, SharedStore, StorePolicy, WarmStart};
