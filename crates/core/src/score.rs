//! The paper's score function (Eq. 3).
//!
//! CLITE cannot hand raw multi-objective outcomes to BO; it collapses one
//! observation window into a single smooth score in `[0, 1]` with two
//! modes:
//!
//! * **QoS mode** (some LC job misses its target):
//!   `score = ½ · (∏ₙ min(1, QoS-Targetₙ / Current-Latencyₙ))^(1/N_LC)` —
//!   a geometric mean of capped latency ratios, smooth in how *far* each
//!   job is from its target (never a flat 0, which would give BO no
//!   gradient to follow; see the paper's discussion of why a 0/1 score
//!   fails);
//! * **performance mode** (every LC job meets its target):
//!   `score = ½ + ½ · (∏ₙ Colo-Perfₙ / Iso-Perfₙ)^(1/N_BG)` over the BG
//!   jobs — and when no BG jobs are co-located, `N_BG` is "simply replaced
//!   by `N_LC`" (paper Sec. 4) using the LC jobs' isolation-relative
//!   performance, so CLITE keeps improving LC performance past the QoS
//!   targets.
//!
//! The cap at 0.5 encodes the paper's priority: *no* BG performance can
//! compensate for a QoS violation.

use serde::Serialize;

use clite_gp::stats::geometric_mean;
use clite_sim::metrics::Observation;
use clite_sim::workload::JobClass;

/// Which mode of Eq. 3 produced a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ScoreMode {
    /// Some LC job misses QoS; score ≤ 0.5.
    QosViolated,
    /// All LC jobs meet QoS; score ≥ 0.5, driven by BG (or LC) performance.
    QosMet,
}

/// A scored observation with its per-job components.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScoreBreakdown {
    /// Final score in `[0, 1]`.
    pub value: f64,
    /// Which mode applied.
    pub mode: ScoreMode,
    /// Capped `target/latency` ratio per LC job (the QoS-mode factors).
    pub lc_ratios: Vec<f64>,
    /// Capped `colo/iso` performance ratio per BG job (the
    /// performance-mode factors).
    pub bg_ratios: Vec<f64>,
}

/// Scores one observation window per Eq. 3.
///
/// An observation with no LC jobs is always in performance mode; one with
/// no BG jobs uses the LC jobs' isolation-relative performance in
/// performance mode.
#[must_use]
pub fn score_observation(obs: &Observation) -> ScoreBreakdown {
    let lc_ratios: Vec<f64> = obs
        .lc_jobs()
        .map(|j| {
            let target = j.qos_target_us.expect("LC job has a QoS target");
            (target / j.latency_p95_us).min(1.0)
        })
        .collect();
    let bg_ratios: Vec<f64> = obs.bg_jobs().map(|j| j.normalized_perf.min(1.0)).collect();

    let all_met = obs
        .jobs
        .iter()
        .filter(|j| j.class == JobClass::LatencyCritical)
        .all(|j| j.qos_met == Some(true));

    if !all_met {
        let value = 0.5 * geometric_mean(&lc_ratios);
        return ScoreBreakdown { value, mode: ScoreMode::QosViolated, lc_ratios, bg_ratios };
    }

    // Performance mode: BG jobs if present, else the LC jobs' own
    // isolation-relative performance (N_BG → N_LC substitution).
    let perf = if bg_ratios.is_empty() {
        let lc_perf: Vec<f64> = obs.lc_jobs().map(|j| j.normalized_perf.min(1.0)).collect();
        geometric_mean(&lc_perf)
    } else {
        geometric_mean(&bg_ratios)
    };
    ScoreBreakdown { value: 0.5 + 0.5 * perf, mode: ScoreMode::QosMet, lc_ratios, bg_ratios }
}

/// Convenience wrapper returning only the scalar score.
#[must_use]
pub fn score_value(obs: &Observation) -> f64 {
    score_observation(obs).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::counters::CounterSample;
    use clite_sim::metrics::JobObservation;
    use clite_sim::workload::WorkloadId;

    fn counters() -> CounterSample {
        CounterSample {
            cpu_utilization: 0.5,
            llc_hit_rate: 0.5,
            mem_bw_used_frac: 0.2,
            ipc_proxy: 0.8,
            capacity_pressure: 0.0,
            disk_bw_used_frac: 0.0,
            net_bw_used_frac: 0.0,
        }
    }

    fn lc(latency: f64, target: f64, iso: f64) -> JobObservation {
        JobObservation {
            workload: WorkloadId::Memcached,
            class: JobClass::LatencyCritical,
            latency_p95_us: latency,
            offered_qps: 1000.0,
            normalized_perf: (iso / latency).min(1.0),
            qos_met: Some(latency <= target),
            qos_target_us: Some(target),
            iso_latency_p95_us: Some(iso),
            counters: counters(),
        }
    }

    fn bg(perf: f64) -> JobObservation {
        JobObservation {
            workload: WorkloadId::Blackscholes,
            class: JobClass::Background,
            latency_p95_us: 100.0,
            offered_qps: 0.0,
            normalized_perf: perf,
            qos_met: None,
            qos_target_us: None,
            iso_latency_p95_us: None,
            counters: counters(),
        }
    }

    fn obs(jobs: Vec<JobObservation>) -> Observation {
        Observation { time_s: 0.0, window_s: 2.0, jobs }
    }

    #[test]
    fn violation_caps_score_at_half() {
        // One job misses badly, BG perf is perfect — score must stay ≤ 0.5.
        let o = obs(vec![lc(1000.0, 100.0, 50.0), bg(1.0)]);
        let s = score_observation(&o);
        assert_eq!(s.mode, ScoreMode::QosViolated);
        assert!(s.value <= 0.5);
        assert!((s.value - 0.5 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn met_mode_floors_score_at_half() {
        let o = obs(vec![lc(50.0, 100.0, 40.0), bg(0.0001)]);
        let s = score_observation(&o);
        assert_eq!(s.mode, ScoreMode::QosMet);
        assert!(s.value >= 0.5);
    }

    #[test]
    fn perfect_colocations_score_one() {
        let o = obs(vec![lc(50.0, 100.0, 50.0), bg(1.0)]);
        let s = score_observation(&o);
        assert!((s.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_smooth_in_violation_depth() {
        // Closer to target ⇒ higher score, even while violating.
        let near = score_value(&obs(vec![lc(120.0, 100.0, 50.0)]));
        let far = score_value(&obs(vec![lc(400.0, 100.0, 50.0)]));
        assert!(near > far);
        assert!(near < 0.5);
    }

    #[test]
    fn geometric_mean_punishes_worst_job() {
        // Two jobs at ratios (0.9, 0.1) score lower than two at (0.5, 0.5):
        // the geometric mean favors balanced progress.
        let unbalanced =
            score_value(&obs(vec![lc(100.0 / 0.9, 100.0, 50.0), lc(1000.0, 100.0, 50.0)]));
        let balanced = score_value(&obs(vec![lc(200.0, 100.0, 50.0), lc(200.0, 100.0, 50.0)]));
        assert!(balanced > unbalanced);
    }

    #[test]
    fn bg_only_observation_uses_performance_mode() {
        let o = obs(vec![bg(0.6), bg(0.8)]);
        let s = score_observation(&o);
        assert_eq!(s.mode, ScoreMode::QosMet);
        let expected = 0.5 + 0.5 * (0.6f64 * 0.8).sqrt();
        assert!((s.value - expected).abs() < 1e-12);
    }

    #[test]
    fn lc_only_observation_optimizes_lc_past_qos() {
        // All QoS met, no BG: score reflects LC isolation-relative perf.
        let slack = score_value(&obs(vec![lc(50.0, 100.0, 45.0)]));
        let tight = score_value(&obs(vec![lc(99.0, 100.0, 45.0)]));
        assert!(slack > tight, "more LC slack must score higher with no BG jobs");
        assert!(slack > 0.5 && tight > 0.5);
    }

    #[test]
    fn score_always_in_unit_interval() {
        for lat in [10.0, 100.0, 1e6] {
            for perf in [0.0, 0.3, 1.0, 1.5] {
                let v = score_value(&obs(vec![lc(lat, 100.0, 10.0), bg(perf)]));
                assert!((0.0..=1.0).contains(&v), "score {v} for lat {lat} perf {perf}");
            }
        }
    }

    mod boundary_props {
        //! Property tests pinning Eq. 3's behaviour around the 0.5
        //! boundary that separates QoS mode from performance mode.

        use proptest::prelude::*;

        use super::*;

        /// An LC job whose latency is `ratio`× its QoS target.
        fn arb_lc() -> impl Strategy<Value = JobObservation> {
            (50.0f64..5000.0, 0.3f64..3.0)
                .prop_map(|(target, ratio)| lc(target * ratio, target, target * 0.4))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The boundary itself: the score falls below ½ exactly when
            /// some LC job misses its QoS target, and the reported mode
            /// agrees with the side of the boundary.
            #[test]
            fn below_half_iff_some_lc_misses(
                lcs in prop::collection::vec(arb_lc(), 1..4),
                bg_perfs in prop::collection::vec(0.0f64..1.5, 0..3),
            ) {
                let any_miss = lcs.iter().any(|j| j.qos_met == Some(false));
                let mut jobs = lcs;
                jobs.extend(bg_perfs.into_iter().map(bg));
                let s = score_observation(&obs(jobs));
                prop_assert_eq!(s.value < 0.5, any_miss);
                prop_assert_eq!(s.mode == ScoreMode::QosViolated, any_miss);
            }

            /// Ordering across the boundary: a QoS-met observation always
            /// outscores a QoS-violating one, no matter how the BG jobs
            /// fare on either side.
            #[test]
            fn met_always_outscores_violated(
                target in 50.0f64..5000.0,
                excess in 1e-6f64..2.0,
                slack in 0.01f64..0.999,
                bad_bg in 0.0f64..1.0,
                good_bg in 0.0f64..1.0,
            ) {
                let violated = score_value(&obs(vec![
                    lc(target * (1.0 + excess), target, target * 0.4),
                    bg(good_bg),
                ]));
                let met = score_value(&obs(vec![
                    lc(target * slack, target, target * 0.4),
                    bg(bad_bg),
                ]));
                prop_assert!(met > violated);
            }

            /// Continuity from below: as the violation shrinks, the score
            /// approaches ½ with a gap bounded by the relative excess
            /// latency — no cliff that would starve BO of gradient.
            #[test]
            fn violation_score_approaches_half(
                target in 50.0f64..5000.0,
                excess in 1e-9f64..1.0,
            ) {
                let s = score_observation(&obs(vec![lc(
                    target * (1.0 + excess),
                    target,
                    target * 0.4,
                )]));
                prop_assert_eq!(s.mode, ScoreMode::QosViolated);
                prop_assert!(s.value < 0.5);
                prop_assert!(0.5 - s.value <= 0.5 * excess + 1e-12);
            }

            /// Ordering inside QoS mode: uniformly shrinking every LC
            /// job's latency (while still violating) never lowers the
            /// score.
            #[test]
            fn qos_mode_monotone_in_latency(
                targets in prop::collection::vec(50.0f64..5000.0, 1..4),
                ratio in 1.01f64..3.0,
                shrink in 0.5f64..0.999,
            ) {
                let worse: Vec<JobObservation> = targets
                    .iter()
                    .map(|&t| lc(t * ratio, t, t * 0.4))
                    .collect();
                let better: Vec<JobObservation> = targets
                    .iter()
                    .map(|&t| lc((t * ratio * shrink).max(t * 1.001), t, t * 0.4))
                    .collect();
                let worse_score = score_value(&obs(worse));
                let better_score = score_value(&obs(better));
                prop_assert!(better_score >= worse_score);
                prop_assert!(better_score < 0.5, "both sides stay in QoS mode");
            }
        }
    }
}
