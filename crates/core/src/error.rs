use std::fmt;

use clite_bo::BoError;
use clite_sim::alloc::Partition;
use clite_sim::SimError;
use clite_store::StoreError;

/// Error type for the CLITE controller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CliteError {
    /// The Bayesian-optimization engine failed.
    Bo(BoError),
    /// The simulator rejected a request.
    Sim(SimError),
    /// The observation store failed at the durable layer.
    Store(StoreError),
    /// The server hosts no latency-critical *or* background jobs to
    /// optimize for (empty server).
    NothingToOptimize,
    /// Fault retries were exhausted (or the node died): the search gave up
    /// after re-enforcing its safe fallback — the best known QoS-feasible
    /// partition, else the equal-share bootstrap partition. The run is
    /// degraded, not failed: `fallback` is what the node is (best-effort)
    /// running now.
    Degraded {
        /// The partition the controller re-enforced before giving up.
        fallback: Partition,
        /// The fault that exhausted the retry budget.
        reason: SimError,
    },
}

impl CliteError {
    /// Whether this error reports a dead node (directly, or as the fault
    /// that forced a degraded search). Cluster admission uses this to
    /// decide eviction rather than error propagation.
    #[must_use]
    pub fn is_node_crash(&self) -> bool {
        match self {
            CliteError::Sim(e) => e.is_node_crash(),
            CliteError::Degraded { reason, .. } => reason.is_node_crash(),
            _ => false,
        }
    }
}

impl fmt::Display for CliteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliteError::Bo(e) => write!(f, "bayesian optimization failure: {e}"),
            CliteError::Sim(e) => write!(f, "simulator failure: {e}"),
            CliteError::Store(e) => write!(f, "observation store failure: {e}"),
            CliteError::NothingToOptimize => write!(f, "no jobs to optimize"),
            CliteError::Degraded { reason, .. } => {
                write!(f, "search degraded to safe fallback: {reason}")
            }
        }
    }
}

impl std::error::Error for CliteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliteError::Bo(e) => Some(e),
            CliteError::Sim(e) => Some(e),
            CliteError::Store(e) => Some(e),
            CliteError::NothingToOptimize => None,
            CliteError::Degraded { reason, .. } => Some(reason),
        }
    }
}

impl From<BoError> for CliteError {
    fn from(e: BoError) -> Self {
        CliteError::Bo(e)
    }
}

impl From<SimError> for CliteError {
    fn from(e: SimError) -> Self {
        CliteError::Sim(e)
    }
}

impl From<StoreError> for CliteError {
    fn from(e: StoreError) -> Self {
        CliteError::Store(e)
    }
}
