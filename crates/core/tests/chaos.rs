//! Chaos integration tests: the controller and the adaptive runner under
//! injected faults.
//!
//! Three contracts are pinned here:
//!
//! 1. `FaultSpec::none()` is free: a run through a fault-free
//!    [`FaultyTestbed`] is bit-for-bit identical to a run against the bare
//!    server.
//! 2. Under the default chaos spec every run either completes or degrades
//!    to its safe fallback — never panics — and quarantined windows are
//!    counted but never stored.
//! 3. Under transient-only faults (no crash) the adaptive loop still
//!    reaches QoS on every steady segment while spending a bounded number
//!    of extra search windows over the fault-free run.

use clite::adaptive::{run_adaptive, AdaptiveConfig, AdaptiveTrace, Phase};
use clite::config::CliteConfig;
use clite::controller::CliteController;
use clite::{CliteError, ObservationStore};
use clite_faults::{FaultSpec, FaultyTestbed};
use clite_sim::prelude::*;
use clite_telemetry::{MemoryRecorder, Telemetry};

fn mix() -> Vec<JobSpec> {
    vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.2),
        JobSpec::background(WorkloadId::Streamcluster),
    ]
}

fn server(seed: u64) -> Server {
    Server::new(ResourceCatalog::testbed(), mix(), seed).unwrap()
}

/// Acceptance criterion: with `FaultSpec::none()` every existing path is
/// bit-for-bit unchanged. The decorator must not perturb the inner
/// testbed's RNG, clock, or window accounting.
#[test]
fn rate_zero_controller_run_is_bit_identical_to_bare_run() {
    let controller = CliteController::default();

    let mut bare = server(7);
    let expected = controller.run(&mut bare).unwrap();

    let mut faulty = FaultyTestbed::new(server(7), FaultSpec::none(), 0xDEAD_BEEF);
    let got = controller.run(&mut faulty).unwrap();

    assert_eq!(got.best_partition, expected.best_partition);
    assert_eq!(got.best_score.to_bits(), expected.best_score.to_bits());
    assert_eq!(got.samples, expected.samples);
    assert_eq!(got.converged, expected.converged);
    assert_eq!(got.infeasible_jobs, expected.infeasible_jobs);
    assert_eq!(got.samples_to_qos, expected.samples_to_qos);
    assert_eq!(got.quarantined, 0);
    assert_eq!(faulty.stats().total(), 0, "no faults may fire at rate zero");
}

/// Under the default chaos spec (spikes, drops, stuck windows, enforcement
/// glitches, possible node crash) every seed must either complete the
/// search or abort with the typed `Degraded` error — and when it
/// completes, quarantined windows are counted in `samples_used()` but
/// never appended to the observation store.
#[test]
fn default_chaos_completes_or_degrades_without_panic() {
    let controller = CliteController::new(CliteConfig::default().hardened());
    let mut completed = 0usize;
    let mut degraded = 0usize;

    for seed in 0..8u64 {
        let recorder = MemoryRecorder::new();
        let telemetry = Telemetry::new(&recorder);
        let store = ObservationStore::in_memory().into_shared();
        let mut faulty = FaultyTestbed::new(server(seed), FaultSpec::default_chaos(), seed);

        match controller.run_with_store(&mut faulty, &store, &telemetry) {
            Ok(outcome) => {
                completed += 1;
                assert_eq!(
                    outcome.samples_used(),
                    outcome.samples.len() + outcome.quarantined,
                    "quarantined windows count toward overhead"
                );
                assert_eq!(
                    recorder.count_kind("sample_quarantined"),
                    outcome.quarantined,
                    "every quarantine must be reported"
                );
                let guard = store.lock().unwrap();
                assert_eq!(
                    guard.stats().appends as usize,
                    outcome.samples.len(),
                    "quarantined windows must never reach the store"
                );
            }
            Err(CliteError::Degraded { .. }) => {
                degraded += 1;
                assert!(
                    recorder.count_kind("fallback_engaged") >= 1,
                    "a degraded run must have engaged the safe fallback"
                );
            }
            Err(e) => panic!("seed {seed}: chaos run must degrade gracefully, got {e}"),
        }
        if faulty.stats().total() > 0 {
            assert!(
                recorder.count_kind("fault_injected") > 0,
                "seed {seed}: surfaced faults must be reported"
            );
        }
    }
    assert_eq!(completed + degraded, 8);
    assert!(completed >= 1, "some seed must survive the default chaos spec");
}

fn search_windows(trace: &AdaptiveTrace) -> usize {
    trace.points.iter().filter(|p| p.phase == Phase::Search).count()
}

/// Maximal runs of consecutive steady windows.
fn steady_segments(trace: &AdaptiveTrace) -> Vec<Vec<bool>> {
    let mut segments: Vec<Vec<bool>> = Vec::new();
    let mut in_steady = false;
    for p in &trace.points {
        match (p.phase, in_steady) {
            (Phase::Steady, false) => {
                segments.push(vec![p.observation.all_qos_met()]);
                in_steady = true;
            }
            (Phase::Steady, true) => {
                segments.last_mut().unwrap().push(p.observation.all_qos_met());
            }
            (Phase::Search, _) => in_steady = false,
        }
    }
    segments
}

/// Satellite 4: at a nonzero (transient-only) fault rate the adaptive
/// trace still reaches QoS on every steady segment and spends a bounded
/// number of extra search windows over the fault-free run.
#[test]
fn adaptive_survives_transient_faults_with_bounded_extra_windows() {
    let controller = CliteController::new(CliteConfig::default().hardened());
    let duration = 400.0;

    let mut clean = server(10);
    let clean_trace =
        run_adaptive(&controller, &mut clean, duration, AdaptiveConfig::default()).unwrap();
    assert!(clean_trace.degraded.is_none());

    // The default chaos spec minus the node crash: spikes, drops, stuck
    // windows and enforcement glitches keep firing, but the node survives,
    // so the run must too.
    let spec = FaultSpec { crash_prob: 0.0, crash_at_window: None, ..FaultSpec::default_chaos() };
    let mut faulty = FaultyTestbed::new(server(10), spec, 0xFA57);
    let trace =
        run_adaptive(&controller, &mut faulty, duration, AdaptiveConfig::default()).unwrap();

    assert!(trace.degraded.is_none(), "transient-only faults must not degrade the run");
    assert!(faulty.stats().total() > 0, "the spec must actually inject faults");

    // Every invocation's partition still reaches QoS: each settled steady
    // segment (3+ windows — shorter ones are spike-truncated re-invocation
    // stubs) contains at least one fully QoS-met window.
    let segments = steady_segments(&trace);
    assert!(!segments.is_empty());
    for (i, seg) in segments.iter().enumerate() {
        if seg.len() >= 3 {
            assert!(
                seg.iter().any(|&met| met),
                "steady segment {i} ({} windows) never reached QoS",
                seg.len()
            );
        }
    }

    // Bounded overhead: faults cost retries and re-invocations, but not an
    // unbounded amount of search.
    let clean_search = search_windows(&clean_trace);
    let faulty_search = search_windows(&trace);
    assert!(
        faulty_search <= clean_search * 3 + 30,
        "faulty run spent {faulty_search} search windows vs {clean_search} fault-free"
    );

    // And the steady fraction stays comparable to fault-free (spiked
    // windows read as violations, so some loss is expected).
    assert!(
        trace.steady_qos_fraction() >= 0.8 * clean_trace.steady_qos_fraction(),
        "steady QoS fraction {} vs fault-free {}",
        trace.steady_qos_fraction(),
        clean_trace.steady_qos_fraction()
    );
}

/// A deterministic crash mid-monitoring ends the adaptive run with a
/// `degraded` marker rather than an error or a panic, and keeps the trace
/// collected up to the crash.
#[test]
fn adaptive_node_crash_degrades_with_partial_trace() {
    let controller = CliteController::new(CliteConfig::default().hardened());
    // Window 200 lands well past the first search (≈40–60 windows), deep
    // into steady-state monitoring.
    let spec = FaultSpec { crash_at_window: Some(200), ..FaultSpec::none() };
    let mut faulty = FaultyTestbed::new(server(11), spec, 1);
    let trace = run_adaptive(&controller, &mut faulty, 600.0, AdaptiveConfig::default()).unwrap();
    assert!(faulty.crashed());
    let reason = trace.degraded.as_deref().expect("crash must mark the trace degraded");
    assert!(reason.contains("crash"), "degraded reason should name the crash: {reason}");
    assert!(!trace.points.is_empty(), "pre-crash windows must be kept");
}
