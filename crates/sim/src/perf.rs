//! The additive-bottleneck performance model.
//!
//! Per-query execution time under an allocation decomposes into a CPU
//! component (scaled by an Amdahl speedup over the allocated cores for the
//! workload's *intra-query* parallel fraction — throughput scaling with
//! cores is handled separately by [`capacity_qps`], since queries are
//! independent), a memory component (scaled by the LLC hit fraction earned
//! by the allocated ways and by the allocated memory-bandwidth share), and
//! a disk component, all multiplied by a thrashing factor when the
//! memory-capacity share is below the working set:
//!
//! ```text
//! t(a) = [ T_cpu / S(cores)
//!        + T_mem · (1 − hit(ways)) · max(1, demand_mem / bw_frac)
//!        + T_disk · max(1, demand_disk / disk_frac)
//!        + T_net  · max(1, demand_net / net_frac) ] · thrash(cap_frac)
//! ```
//!
//! where `demand_mem = mem_intensity · (1 − hit(ways))` — a bandwidth share
//! only slows a job down when it is *below the job's traffic demand*, and
//! cache hits shrink that demand (Intel MBA throttles are harmless while
//! the share exceeds what the job actually pulls).
//!
//! This form reproduces the paper's two central phenomena:
//!
//! * **Resource equivalence classes** (Fig. 1): LLC ways and memory
//!   bandwidth are substitutes — more ways reduce the traffic that the
//!   bandwidth share has to carry, so "16 cores + 1 way" and "14 cores +
//!   6 ways" can meet the same QoS.
//! * **Cross-resource interactions** (Sec. 3.2): adding cache ways has a
//!   visible effect only while the memory term matters, i.e. only after
//!   bandwidth is constrained — exactly the coupling that defeats
//!   one-dimension-at-a-time (coordinate-descent) search.

use crate::alloc::JobAllocation;
use crate::resource::{ResourceCatalog, ResourceKind};
use crate::workload::WorkloadProfile;

/// Amdahl speedup of `cores` cores for a job with parallel fraction `p`.
#[must_use]
pub fn amdahl_speedup(cores: f64, parallel_frac: f64) -> f64 {
    debug_assert!(cores >= 1.0);
    1.0 / ((1.0 - parallel_frac) + parallel_frac / cores)
}

/// LLC hit fraction earned by `ways` cache ways (exponential saturation).
#[must_use]
pub fn llc_hit_fraction(ways: f64, hit_max: f64, ways_sat: f64) -> f64 {
    hit_max * (1.0 - (-ways / ways_sat).exp())
}

/// Thrashing multiplier when the capacity share is below the working set.
#[must_use]
pub fn thrash_factor(cap_frac: f64, working_set_frac: f64, thrash_exp: f64) -> f64 {
    if cap_frac >= working_set_frac {
        1.0
    } else {
        (working_set_frac / cap_frac).powf(thrash_exp)
    }
}

/// Per-query execution time (µs) of `profile` under `alloc` on `catalog`,
/// before queueing and interference.
#[must_use]
pub fn query_time_us(
    profile: &WorkloadProfile,
    alloc: &JobAllocation,
    catalog: &ResourceCatalog,
) -> f64 {
    let cores = f64::from(alloc.units(ResourceKind::Cores));
    let ways = f64::from(alloc.units(ResourceKind::LlcWays));
    let bw_frac = alloc.fraction(ResourceKind::MemBandwidth, catalog);
    let cap_frac = alloc.fraction(ResourceKind::MemCapacity, catalog);
    let disk_frac = alloc.fraction(ResourceKind::DiskBandwidth, catalog);
    let net_frac = alloc.fraction(ResourceKind::NetBandwidth, catalog);

    let cpu = profile.cpu_time_us / amdahl_speedup(cores, profile.parallel_frac);
    let hit = llc_hit_fraction(ways, profile.hit_max, profile.ways_sat);
    let mem_demand = profile.mem_intensity * (1.0 - hit);
    let bw_slowdown = (mem_demand / bw_frac).max(1.0);
    let mem = profile.mem_time_us * (1.0 - hit) * bw_slowdown;
    let disk_slowdown = (profile.disk_intensity / disk_frac).max(1.0);
    let disk = profile.disk_time_us * disk_slowdown;
    let net_slowdown = (profile.net_intensity / net_frac).max(1.0);
    let net = profile.net_time_us * net_slowdown;
    let thrash = thrash_factor(cap_frac, profile.working_set_frac, profile.thrash_exp);

    (cpu + mem + disk + net) * thrash
}

/// Per-query time (µs) with the *entire machine* (isolation, the paper's
/// `Iso-Perf` reference point).
#[must_use]
pub fn isolation_time_us(profile: &WorkloadProfile, catalog: &ResourceCatalog) -> f64 {
    let full = JobAllocation::from_units(catalog.all_units());
    query_time_us(profile, &full, catalog)
}

/// Throughput capacity in queries per second: `cores` independent queries
/// in flight, each taking `query_time_us`.
#[must_use]
pub fn capacity_qps(query_time_us: f64, cores: u32) -> f64 {
    f64::from(cores) * 1.0e6 / query_time_us
}

/// Throughput of a background job under `alloc`, normalized to its
/// isolation throughput (`Colo-Perf / Iso-Perf` in the paper's Eq. 3):
/// work items complete at `cores / t_q`, so both the core count and the
/// per-item time matter.
#[must_use]
pub fn normalized_throughput(
    profile: &WorkloadProfile,
    alloc: &JobAllocation,
    catalog: &ResourceCatalog,
) -> f64 {
    let t_iso = isolation_time_us(profile, catalog);
    let t = query_time_us(profile, alloc, catalog);
    let cores = alloc.units(ResourceKind::Cores);
    let cores_full = catalog.units(ResourceKind::Cores);
    capacity_qps(t, cores) / capacity_qps(t_iso, cores_full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::NUM_RESOURCES;
    use crate::workload::WorkloadId;

    fn catalog() -> ResourceCatalog {
        ResourceCatalog::testbed()
    }

    fn alloc(units: [u32; NUM_RESOURCES]) -> JobAllocation {
        JobAllocation::from_units(units)
    }

    #[test]
    fn amdahl_monotone_and_bounded() {
        let p = 0.95;
        let mut last = 0.0;
        for c in 1..=10 {
            let s = amdahl_speedup(f64::from(c), p);
            assert!(s > last);
            assert!(s <= f64::from(c) + 1e-9);
            last = s;
        }
        assert!((amdahl_speedup(1.0, p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_fraction_saturates() {
        let h1 = llc_hit_fraction(1.0, 0.8, 3.0);
        let h5 = llc_hit_fraction(5.0, 0.8, 3.0);
        let h11 = llc_hit_fraction(11.0, 0.8, 3.0);
        assert!(h1 < h5 && h5 < h11);
        assert!(h11 < 0.8);
        // Diminishing returns: the first ways buy more than the last.
        assert!(h5 - h1 > h11 - h5);
    }

    #[test]
    fn more_resources_never_slower() {
        let profile = WorkloadId::Masstree.profile();
        let c = catalog();
        let small = alloc([2, 2, 2, 2, 2, 2]);
        let big = alloc([8, 9, 8, 8, 8, 8]);
        assert!(query_time_us(&profile, &big, &c) < query_time_us(&profile, &small, &c));
    }

    #[test]
    fn ways_and_bandwidth_are_substitutes() {
        // The resource-equivalence-class property: trading ways for
        // bandwidth can keep query time roughly constant for a
        // bandwidth-bound workload.
        let profile = WorkloadId::Masstree.profile();
        let c = catalog();
        let ways_heavy = alloc([5, 9, 4, 5, 5, 5]);
        let bw_heavy = alloc([5, 2, 7, 5, 5, 5]);
        let t_ways = query_time_us(&profile, &ways_heavy, &c);
        let t_bw = query_time_us(&profile, &bw_heavy, &c);
        // The two heterogeneous allocations are closer to each other than
        // either is to the starved configuration.
        let starved = alloc([5, 2, 3, 5, 5, 5]);
        let t_starved = query_time_us(&profile, &starved, &c);
        assert!(t_starved > t_ways.max(t_bw));
        assert!((t_ways - t_bw).abs() < 0.5 * (t_starved - t_ways.min(t_bw)));
    }

    #[test]
    fn cache_ways_interact_with_bandwidth() {
        // Sec. 3.2's example: extra ways matter much more when bandwidth is
        // scarce (the memory term dominates) than when it is plentiful.
        let profile = WorkloadId::Streamcluster.profile();
        let c = catalog();
        let gain = |bw: u32| {
            let few_ways = alloc([5, 2, bw, 5, 5, 5]);
            let many_ways = alloc([5, 9, bw, 5, 5, 5]);
            query_time_us(&profile, &few_ways, &c) / query_time_us(&profile, &many_ways, &c)
        };
        assert!(gain(2) > gain(9));
    }

    #[test]
    fn thrash_kicks_in_below_working_set() {
        assert_eq!(thrash_factor(0.8, 0.5, 1.5), 1.0);
        assert!(thrash_factor(0.2, 0.5, 1.5) > 1.0);
        let p = WorkloadId::Specjbb.profile();
        let c = catalog();
        let starved_cap = alloc([5, 5, 5, 1, 5, 5]);
        let fed_cap = alloc([5, 5, 5, 9, 5, 5]);
        assert!(
            query_time_us(&p, &starved_cap, &c) > 1.5 * query_time_us(&p, &fed_cap, &c),
            "specjbb must be strongly capacity-sensitive"
        );
    }

    #[test]
    fn compute_bound_bg_ignores_bandwidth() {
        let p = WorkloadId::Swaptions.profile();
        let c = catalog();
        let low_bw = alloc([5, 5, 1, 5, 5, 5]);
        let high_bw = alloc([5, 5, 9, 5, 5, 5]);
        let ratio = query_time_us(&p, &low_bw, &c) / query_time_us(&p, &high_bw, &c);
        assert!(ratio < 1.15, "swaptions barely cares about bandwidth, ratio {ratio}");
    }

    #[test]
    fn normalized_throughput_at_full_is_one() {
        for w in WorkloadId::BACKGROUND {
            let p = w.profile();
            let c = catalog();
            let full = JobAllocation::from_units(c.all_units());
            let t = normalized_throughput(&p, &full, &c);
            assert!((t - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_throughput_below_one_when_partitioned() {
        let p = WorkloadId::Streamcluster.profile();
        let c = catalog();
        let half = alloc([5, 5, 5, 5, 5, 5]);
        let t = normalized_throughput(&p, &half, &c);
        assert!(t < 1.0 && t > 0.0);
    }

    #[test]
    fn capacity_scales_with_cores() {
        assert!((capacity_qps(100.0, 1) - 10_000.0).abs() < 1e-9);
        assert!((capacity_qps(100.0, 10) - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn bg_throughput_scales_with_cores() {
        let p = WorkloadId::Swaptions.profile();
        let c = catalog();
        let few = alloc([2, 5, 5, 5, 5, 5]);
        let many = alloc([8, 5, 5, 5, 5, 5]);
        let ratio = normalized_throughput(&p, &many, &c) / normalized_throughput(&p, &few, &c);
        assert!(ratio > 3.0, "pure-compute BG job should scale ~linearly, got {ratio}");
    }
}
