//! # clite-sim — a co-location server simulator
//!
//! This crate is the hardware/workload substrate for the CLITE (HPCA 2020)
//! reproduction. The paper runs on a real Intel Xeon testbed, partitioning
//! shared resources with `taskset`, Intel CAT, Intel MBA, and Linux cgroups
//! (its Table 1), and drives Tailbench latency-critical (LC) workloads plus
//! PARSEC background (BG) workloads against it. None of that hardware is
//! available here, so this crate simulates the same contract:
//!
//! * a [`resource::ResourceCatalog`] with the same partitionable resources
//!   and unit granularities (cores, LLC ways, memory bandwidth, memory
//!   capacity, disk bandwidth);
//! * [`alloc::Partition`] — an allocation matrix over jobs × resources that
//!   enforces the paper's feasibility constraints (every job gets at least
//!   one unit; per-resource allocations sum to the unit count);
//! * [`workload`] — profiles for the paper's five LC and six BG workloads
//!   with distinct resource sensitivities;
//! * [`perf`] — an additive-bottleneck (roofline-style) performance model
//!   that yields the paper's "resource equivalence class" behaviour;
//! * [`queueing`] — M/M/c-style tail-latency models (processor sharing
//!   and Erlang-C, configurable QoS quantile) producing the
//!   hockey-stick QPS-vs-p95 curves of the paper's Fig. 6, from which QoS
//!   targets and maximum loads are derived exactly the way the paper does
//!   (knee of the isolation curve);
//! * [`server::Server`] — the observable machine: apply a partition, run a
//!   2-second observation window, read noisy per-job latency/throughput and
//!   synthetic performance counters;
//! * [`testbed`] — the [`testbed::Testbed`] trait abstracting that
//!   enforce/observe contract, with [`server::Server`] as one adapter, a
//!   caching [`testbed::MemoizedTestbed`] backend, and factories for
//!   deferred (per-cluster-node) construction.
//!
//! Every policy in the reproduction (CLITE, PARTIES, Heracles, RAND+,
//! GENETIC, ORACLE) interacts with the machine only through the
//! [`testbed::Testbed`] trait, exactly as the real controllers interact
//! with the isolation tools and performance counters of a physical node.
//! Ground truth (noise-free evaluation) is fenced off behind
//! [`testbed::OracleTestbed`] so only offline schemes can reach it.
//!
//! ## Example
//!
//! ```
//! use clite_sim::prelude::*;
//!
//! let catalog = ResourceCatalog::testbed();
//! let jobs = vec![
//!     JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
//!     JobSpec::background(WorkloadId::Blackscholes),
//! ];
//! let mut server = Server::new(catalog, jobs, 42)?;
//! let partition = Partition::equal_share(server.catalog(), server.job_count())?;
//! let obs = server.observe(&partition);
//! assert_eq!(obs.jobs.len(), 2);
//! # Ok::<(), clite_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod counters;
pub mod isolation;
pub mod load;
pub mod metrics;
pub mod noise;
pub mod perf;
pub mod queueing;
pub mod resource;
pub mod server;
pub mod testbed;
pub mod workload;

mod error;

pub use error::SimError;

/// Convenience re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::alloc::{JobAllocation, Partition};
    pub use crate::load::LoadSchedule;
    pub use crate::metrics::{JobObservation, Observation};
    pub use crate::queueing::QosSpec;
    pub use crate::resource::{ResourceCatalog, ResourceKind, NUM_RESOURCES};
    pub use crate::server::{JobSpec, MachineSpec, Server};
    pub use crate::testbed::{
        MemoizedTestbed, ObservationCache, OracleTestbed, ServerFactory, Testbed, TestbedFactory,
    };
    pub use crate::workload::{JobClass, WorkloadId, WorkloadProfile};
    pub use crate::SimError;
}
