//! Measurement noise for the 2-second observation windows.
//!
//! On the paper's testbed, every sampled configuration is observed for two
//! seconds and the measured tail latency / throughput carry run-to-run
//! noise (which is why the GP models observation noise and why the paper's
//! Fig. 11 studies run-to-run variability at all). We model that noise as
//! multiplicative log-normal jitter applied independently per job per
//! window.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative log-normal noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// σ of the log-normal factor applied to observed p95 latency.
    pub latency_sigma: f64,
    /// σ of the log-normal factor applied to observed throughput.
    pub throughput_sigma: f64,
}

impl NoiseModel {
    /// Default measurement noise: ~2% latency jitter, ~1% throughput jitter
    /// (a 2-second window collects thousands of queries, so percentile
    /// estimates are fairly stable).
    #[must_use]
    pub fn default_measurement() -> Self {
        Self { latency_sigma: 0.02, throughput_sigma: 0.01 }
    }

    /// A noise-free model, used by ORACLE's privileged ground-truth access
    /// and by deterministic tests.
    #[must_use]
    pub fn none() -> Self {
        Self { latency_sigma: 0.0, throughput_sigma: 0.0 }
    }

    /// Whether any jitter is applied at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.latency_sigma == 0.0 && self.throughput_sigma == 0.0
    }

    /// A multiplicative latency jitter factor.
    pub fn latency_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        lognormal_factor(rng, self.latency_sigma)
    }

    /// A multiplicative throughput jitter factor.
    pub fn throughput_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        lognormal_factor(rng, self.throughput_sigma)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::default_measurement()
    }
}

/// A standard-normal sample via the Box–Muller transform (keeps the crate
/// free of a distributions dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

fn lognormal_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    (standard_normal(rng) * sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = NoiseModel::none();
        assert!(m.is_none());
        for _ in 0..10 {
            assert_eq!(m.latency_factor(&mut rng), 1.0);
            assert_eq!(m.throughput_factor(&mut rng), 1.0);
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_factor_positive_and_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = NoiseModel::default_measurement();
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| m.latency_factor(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean factor {mean}");
    }
}
