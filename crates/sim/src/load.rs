//! Load schedules for latency-critical jobs.
//!
//! Most experiments hold each LC job at a constant fraction of its maximum
//! load; the paper's Fig. 16 steps memcached's load from 10% to 30% over
//! time to show CLITE re-converging. [`LoadSchedule`] captures both, plus a
//! ramp and a diurnal pattern for extended studies.

use serde::{Deserialize, Serialize};

/// A time-varying load fraction (of the workload's maximum load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSchedule {
    /// Constant load fraction.
    Constant(f64),
    /// Steps through `(start_time_s, load)` phases; the active phase is the
    /// last one whose start time is ≤ the query time. Phases must be sorted
    /// by start time.
    Steps(Vec<(f64, f64)>),
    /// Linear ramp from `from` to `to` over `duration_s`, then constant.
    Ramp {
        /// Initial load fraction.
        from: f64,
        /// Final load fraction.
        to: f64,
        /// Ramp duration in seconds.
        duration_s: f64,
    },
    /// Sinusoidal diurnal pattern: `base + amplitude · sin(2πt/period)`,
    /// clamped to `[0.01, 1.0]`.
    Diurnal {
        /// Mean load fraction.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Period in seconds.
        period_s: f64,
    },
    /// Replays a recorded trace of `(time_s, load)` points (sorted by
    /// time) with linear interpolation between points; constant before the
    /// first and after the last.
    Trace(Vec<(f64, f64)>),
}

impl LoadSchedule {
    /// The paper's Fig. 16 schedule: 10% → 20% → 30% in two steps.
    #[must_use]
    pub fn fig16_step(step_at_s: f64) -> Self {
        LoadSchedule::Steps(vec![(0.0, 0.10), (step_at_s, 0.20), (2.0 * step_at_s, 0.30)])
    }

    /// Load fraction at time `t_s` (seconds).
    #[must_use]
    pub fn at(&self, t_s: f64) -> f64 {
        match self {
            LoadSchedule::Constant(l) => *l,
            LoadSchedule::Steps(phases) => {
                let mut load = phases.first().map_or(0.0, |&(_, l)| l);
                for &(start, l) in phases {
                    if t_s >= start {
                        load = l;
                    } else {
                        break;
                    }
                }
                load
            }
            LoadSchedule::Ramp { from, to, duration_s } => {
                if t_s >= *duration_s {
                    *to
                } else {
                    from + (to - from) * (t_s / duration_s)
                }
            }
            LoadSchedule::Diurnal { base, amplitude, period_s } => {
                let v = base + amplitude * (std::f64::consts::TAU * t_s / period_s).sin();
                v.clamp(0.01, 1.0)
            }
            LoadSchedule::Trace(points) => {
                let Some(first) = points.first() else { return 0.0 };
                if t_s <= first.0 {
                    return first.1;
                }
                let last = points.last().expect("non-empty after first()");
                if t_s >= last.0 {
                    return last.1;
                }
                let idx = points.partition_point(|&(t, _)| t <= t_s);
                let (t0, l0) = points[idx - 1];
                let (t1, l1) = points[idx];
                if t1 <= t0 {
                    l0
                } else {
                    l0 + (l1 - l0) * (t_s - t0) / (t1 - t0)
                }
            }
        }
    }

    /// Whether the load changes over time at all.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        match self {
            LoadSchedule::Constant(_) => false,
            LoadSchedule::Steps(phases) => phases.len() > 1,
            LoadSchedule::Ramp { from, to, .. } => from != to,
            LoadSchedule::Diurnal { amplitude, .. } => *amplitude != 0.0,
            LoadSchedule::Trace(points) => points.windows(2).any(|w| w[0].1 != w[1].1),
        }
    }
}

impl Default for LoadSchedule {
    fn default() -> Self {
        LoadSchedule::Constant(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LoadSchedule::Constant(0.4);
        assert_eq!(s.at(0.0), 0.4);
        assert_eq!(s.at(1e6), 0.4);
        assert!(!s.is_dynamic());
    }

    #[test]
    fn steps_pick_latest_phase() {
        let s = LoadSchedule::fig16_step(60.0);
        assert_eq!(s.at(0.0), 0.10);
        assert_eq!(s.at(59.9), 0.10);
        assert_eq!(s.at(60.0), 0.20);
        assert_eq!(s.at(120.0), 0.30);
        assert!(s.is_dynamic());
    }

    #[test]
    fn ramp_interpolates() {
        let s = LoadSchedule::Ramp { from: 0.2, to: 0.8, duration_s: 10.0 };
        assert_eq!(s.at(0.0), 0.2);
        assert!((s.at(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.at(100.0), 0.8);
    }

    #[test]
    fn trace_interpolates_and_clamps_ends() {
        let s = LoadSchedule::Trace(vec![(10.0, 0.2), (20.0, 0.6), (40.0, 0.4)]);
        assert_eq!(s.at(0.0), 0.2, "constant before first point");
        assert_eq!(s.at(10.0), 0.2);
        assert!((s.at(15.0) - 0.4).abs() < 1e-12, "midpoint interpolation");
        assert!((s.at(30.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.at(100.0), 0.4, "constant after last point");
        assert!(s.is_dynamic());
        assert!(!LoadSchedule::Trace(vec![(0.0, 0.3), (50.0, 0.3)]).is_dynamic());
        assert_eq!(LoadSchedule::Trace(vec![]).at(5.0), 0.0);
    }

    #[test]
    fn diurnal_clamped() {
        let s = LoadSchedule::Diurnal { base: 0.9, amplitude: 0.5, period_s: 100.0 };
        for i in 0..200 {
            let l = s.at(f64::from(i));
            assert!((0.01..=1.0).contains(&l));
        }
    }
}
