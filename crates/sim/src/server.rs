//! The observable co-location server.
//!
//! [`Server`] is the only interface controllers get, mirroring how CLITE,
//! PARTIES, etc. interact with a physical node: **apply a partition, wait
//! one observation window, read the counters**. A window is the paper's
//! 2 seconds of simulated time; applying a changed partition additionally
//! costs the isolation layer's enforcement overhead (see
//! [`crate::isolation`]).
//!
//! The simulator also exposes [`Server::ground_truth`], a noise-free,
//! time-free evaluation of a partition. Only ORACLE (the paper's offline
//! brute-force scheme) and tests are allowed to use it; online policies
//! must go through [`Server::observe`].

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::alloc::Partition;
use crate::counters::CounterSample;
use crate::isolation::{enforce as isolation_enforce, EnforcementReport};
use crate::load::LoadSchedule;
use crate::metrics::{JobObservation, Observation};
use crate::noise::NoiseModel;
use crate::perf::{capacity_qps, isolation_time_us, query_time_us};
use crate::queueing::{tail_factor, tail_latency_us, QosSpec, TailConfig};
use crate::resource::ResourceCatalog;
use crate::resource::ResourceKind;
use crate::workload::{JobClass, WorkloadId, WorkloadProfile};
use crate::SimError;

/// The testbed machine description (paper Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// CPU model string.
    pub cpu_model: String,
    /// Number of sockets.
    pub sockets: u32,
    /// Processor speed in GHz.
    pub ghz: f64,
    /// Logical processor cores.
    pub logical_cores: u32,
    /// Physical cores.
    pub physical_cores: u32,
    /// Private L1 size in KB.
    pub l1_kb: u32,
    /// Private L2 size in KB.
    pub l2_kb: u32,
    /// Shared L3 size in KB.
    pub l3_kb: u32,
    /// L3 associativity (ways).
    pub l3_ways: u32,
    /// Memory capacity in GB.
    pub mem_gb: u32,
    /// Operating system string.
    pub os: String,
    /// SSD capacity in GB.
    pub ssd_gb: u32,
    /// HDD capacity in TB.
    pub hdd_tb: u32,
}

impl MachineSpec {
    /// The paper's Intel Xeon Silver 4114 testbed (Table 2).
    #[must_use]
    pub fn xeon_silver_4114() -> Self {
        Self {
            cpu_model: "Intel(R) Xeon(R) Silver 4114".to_owned(),
            sockets: 1,
            ghz: 2.2,
            logical_cores: 20,
            physical_cores: 10,
            l1_kb: 32,
            l2_kb: 1024,
            l3_kb: 14_080,
            l3_ways: 11,
            mem_gb: 46,
            os: "Ubuntu 18.04.1 LTS (4.15.0-36-generic)".to_owned(),
            ssd_gb: 500,
            hdd_tb: 2,
        }
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::xeon_silver_4114()
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} socket, {:.1} GHz, {} logical / {} physical cores, L3 {} KB {}-way, {} GB RAM)",
            self.cpu_model,
            self.sockets,
            self.ghz,
            self.logical_cores,
            self.physical_cores,
            self.l3_kb,
            self.l3_ways,
            self.mem_gb
        )
    }
}

/// Specification of one co-located job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which workload runs.
    pub workload: WorkloadId,
    /// Load schedule (fraction of the workload's maximum load); ignored for
    /// BG jobs, which always run flat out.
    pub load: LoadSchedule,
    /// Optional custom performance profile replacing the named workload's
    /// calibrated constants (see
    /// [`WorkloadProfileBuilder`](crate::workload::WorkloadProfileBuilder)).
    pub profile_override: Option<WorkloadProfile>,
}

impl JobSpec {
    /// A latency-critical job at a constant load fraction.
    #[must_use]
    pub fn latency_critical(workload: WorkloadId, load_frac: f64) -> Self {
        Self { workload, load: LoadSchedule::Constant(load_frac), profile_override: None }
    }

    /// A latency-critical job with a time-varying load schedule.
    #[must_use]
    pub fn latency_critical_scheduled(workload: WorkloadId, load: LoadSchedule) -> Self {
        Self { workload, load, profile_override: None }
    }

    /// A throughput-oriented background job.
    #[must_use]
    pub fn background(workload: WorkloadId) -> Self {
        Self { workload, load: LoadSchedule::Constant(1.0), profile_override: None }
    }

    /// Replaces the named workload's calibrated constants with a custom
    /// profile (the job keeps the name's class and identity for reports).
    #[must_use]
    pub fn with_profile(mut self, profile: WorkloadProfile) -> Self {
        self.profile_override = Some(profile);
        self
    }

    /// The effective performance profile (custom override or the named
    /// workload's calibration).
    #[must_use]
    pub fn profile(&self) -> WorkloadProfile {
        self.profile_override.unwrap_or_else(|| self.workload.profile())
    }

    /// Job class implied by the workload.
    #[must_use]
    pub fn class(&self) -> JobClass {
        self.workload.class()
    }
}

/// Internal per-job runtime state.
#[derive(Debug, Clone)]
struct RunningJob {
    spec: JobSpec,
    profile: WorkloadProfile,
    qos: Option<QosSpec>,
    iso_time_us: f64,
}

/// The simulated co-location server.
#[derive(Debug, Clone)]
pub struct Server {
    catalog: ResourceCatalog,
    machine: MachineSpec,
    jobs: Vec<RunningJob>,
    noise: NoiseModel,
    rng: StdRng,
    interference_coeff: f64,
    tail: TailConfig,
    window_s: f64,
    time_s: f64,
    samples_observed: u64,
    enforcement_overhead_ms: f64,
    current: Partition,
}

impl Server {
    /// Builds a server hosting `jobs` on the default machine, with default
    /// measurement noise, seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoJobs`] for an empty job list,
    /// [`SimError::TooManyJobs`] if the catalog cannot give every job one
    /// unit of every resource, or [`SimError::InvalidLoad`] for an LC load
    /// fraction outside `(0, 1]` at time zero.
    pub fn new(catalog: ResourceCatalog, jobs: Vec<JobSpec>, seed: u64) -> Result<Self, SimError> {
        Self::with_noise(catalog, jobs, seed, NoiseModel::default_measurement())
    }

    /// Same as [`Server::new`] with an explicit noise model.
    ///
    /// # Errors
    ///
    /// See [`Server::new`].
    pub fn with_noise(
        catalog: ResourceCatalog,
        jobs: Vec<JobSpec>,
        seed: u64,
        noise: NoiseModel,
    ) -> Result<Self, SimError> {
        if jobs.is_empty() {
            return Err(SimError::NoJobs);
        }
        let running: Vec<RunningJob> = jobs
            .into_iter()
            .map(|spec| {
                let profile = spec.profile();
                let qos = match spec.class() {
                    JobClass::LatencyCritical => {
                        let l0 = spec.load.at(0.0);
                        if !(0.0..=1.0).contains(&l0) || l0 == 0.0 {
                            return Err(SimError::InvalidLoad { load: l0 });
                        }
                        Some(QosSpec::derive_from_profile(&profile, &catalog))
                    }
                    JobClass::Background => None,
                };
                let iso_time_us = isolation_time_us(&profile, &catalog);
                Ok(RunningJob { spec, profile, qos, iso_time_us })
            })
            .collect::<Result<_, _>>()?;
        let count = running.len();
        let current = Partition::equal_share(&catalog, count)?;
        Ok(Self {
            catalog,
            machine: MachineSpec::default(),
            jobs: running,
            noise,
            rng: StdRng::seed_from_u64(seed),
            interference_coeff: 0.03,
            tail: TailConfig::default(),
            window_s: 2.0,
            time_s: 0.0,
            samples_observed: 0,
            enforcement_overhead_ms: 0.0,
            current,
        })
    }

    /// The resource catalog of this machine.
    #[must_use]
    pub fn catalog(&self) -> &ResourceCatalog {
        &self.catalog
    }

    /// The machine description (Table 2).
    #[must_use]
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Number of co-located jobs.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Job specs in job order.
    #[must_use]
    pub fn job_specs(&self) -> Vec<JobSpec> {
        self.jobs.iter().map(|j| j.spec.clone()).collect()
    }

    /// Workload of job `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn workload(&self, job: usize) -> WorkloadId {
        self.jobs[job].spec.workload
    }

    /// Job class of job `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn class(&self, job: usize) -> JobClass {
        self.jobs[job].spec.class()
    }

    /// Indices of the latency-critical jobs.
    #[must_use]
    pub fn lc_indices(&self) -> Vec<usize> {
        (0..self.jobs.len()).filter(|&j| self.class(j) == JobClass::LatencyCritical).collect()
    }

    /// Indices of the background jobs.
    #[must_use]
    pub fn bg_indices(&self) -> Vec<usize> {
        (0..self.jobs.len()).filter(|&j| self.class(j) == JobClass::Background).collect()
    }

    /// QoS spec of job `job` (`None` for BG jobs).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn qos(&self, job: usize) -> Option<QosSpec> {
        self.jobs[job].qos
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Number of observation windows run so far — the paper's "number of
    /// configurations sampled" overhead metric (Fig. 15a).
    #[must_use]
    pub fn samples_observed(&self) -> u64 {
        self.samples_observed
    }

    /// Accumulated partition-enforcement overhead in milliseconds.
    #[must_use]
    pub fn enforcement_overhead_ms(&self) -> f64 {
        self.enforcement_overhead_ms
    }

    /// The observation window length in seconds (paper: 2 s).
    #[must_use]
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Overrides the observation window length.
    pub fn set_window_s(&mut self, window_s: f64) {
        self.window_s = window_s.max(1e-3);
    }

    /// The tail-latency configuration (queueing model and QoS quantile).
    #[must_use]
    pub fn tail(&self) -> TailConfig {
        self.tail
    }

    /// Switches the queueing model and/or QoS quantile, re-deriving every
    /// LC job's QoS target so "max load" and targets stay consistent with
    /// the new model.
    pub fn set_tail(&mut self, tail: TailConfig) {
        self.tail = tail;
        for job in &mut self.jobs {
            if job.spec.class() == JobClass::LatencyCritical {
                job.qos = Some(QosSpec::derive_with(&job.profile, &self.catalog, tail));
            }
        }
    }

    /// The currently enforced partition.
    #[must_use]
    pub fn current_partition(&self) -> &Partition {
        &self.current
    }

    /// Replaces an LC job's load schedule with a constant fraction
    /// (dynamic-load experiments change load mid-run this way).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::JobOutOfRange`] or [`SimError::InvalidLoad`].
    pub fn set_load(&mut self, job: usize, load_frac: f64) -> Result<(), SimError> {
        if job >= self.jobs.len() {
            return Err(SimError::JobOutOfRange { job, jobs: self.jobs.len() });
        }
        if !(load_frac > 0.0 && load_frac <= 1.0) {
            return Err(SimError::InvalidLoad { load: load_frac });
        }
        self.jobs[job].spec.load = LoadSchedule::Constant(load_frac);
        Ok(())
    }

    /// Current load fraction of job `job` (1.0 for BG jobs).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn load(&self, job: usize) -> f64 {
        self.jobs[job].spec.load.at(self.time_s)
    }

    /// Applies `partition` through the isolation layer, making it the
    /// current partition. Simulated time advances by the enforcement
    /// overhead (re-applying the current partition is free).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::JobCountMismatch`] if `partition` does not have
    /// one row per co-located job, or [`SimError::CatalogMismatch`] if it
    /// was built against a different catalog.
    pub fn enforce(&mut self, partition: &Partition) -> Result<(), SimError> {
        if partition.job_count() != self.jobs.len() {
            return Err(SimError::JobCountMismatch {
                expected: self.jobs.len(),
                actual: partition.job_count(),
            });
        }
        if *partition.catalog() != self.catalog {
            return Err(SimError::CatalogMismatch);
        }
        let report: EnforcementReport = isolation_enforce(&self.current, partition);
        self.enforcement_overhead_ms += report.overhead_ms;
        self.time_s += report.overhead_ms / 1000.0;
        self.current = partition.clone();
        Ok(())
    }

    /// Runs one observation window under the currently enforced partition,
    /// returning noisy per-job measurements. Simulated time advances by the
    /// window length and the sample counter increments.
    pub fn observe_window(&mut self) -> Observation {
        let current = self.current.clone();
        let obs = self.measure(&current, true);
        self.time_s += self.window_s;
        self.samples_observed += 1;
        obs
    }

    /// Advances simulated time by one window length without measuring
    /// (used by caching backends that skip a redundant window).
    pub fn advance_window(&mut self) {
        self.time_s += self.window_s;
    }

    /// Applies `partition` through the isolation layer and runs one
    /// observation window, returning noisy per-job measurements. Simulated
    /// time advances by the window length plus the enforcement overhead.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not have one row per co-located job or
    /// was built against a different catalog (a controller bug, not a
    /// runtime condition).
    pub fn observe(&mut self, partition: &Partition) -> Observation {
        self.enforce(partition).expect("partition rows must match co-located job count");
        self.observe_window()
    }

    /// Noise-free, time-free evaluation of `partition` — the privileged
    /// ground truth used by ORACLE and by tests. Online policies must not
    /// call this.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not have one row per co-located job.
    #[must_use]
    pub fn ground_truth(&self, partition: &Partition) -> Observation {
        assert_eq!(partition.job_count(), self.jobs.len());
        // Clone-free trick: measurement only needs &self except for noise;
        // use a scratch RNG since noise is disabled.
        let mut scratch = self.clone();
        scratch.noise = NoiseModel::none();
        scratch.measure(partition, false)
    }

    /// Measures all jobs under `partition` at the current time.
    fn measure(&mut self, partition: &Partition, with_noise: bool) -> Observation {
        // Static interference pressure per job: memory intensity × activity.
        let pressures: Vec<f64> = self
            .jobs
            .iter()
            .map(|j| {
                let activity = match j.spec.class() {
                    JobClass::LatencyCritical => j.spec.load.at(self.time_s),
                    JobClass::Background => 1.0,
                };
                j.profile.mem_intensity * activity
            })
            .collect();
        let total_pressure: f64 = pressures.iter().sum();

        let mut records = Vec::with_capacity(self.jobs.len());
        for (i, job) in self.jobs.iter().enumerate() {
            let alloc = partition.job(i);
            let others = total_pressure - pressures[i];
            let interference = 1.0 + self.interference_coeff * others;
            let t_us = query_time_us(&job.profile, alloc, &self.catalog) * interference;
            let cores = alloc.units(ResourceKind::Cores);
            let mu = capacity_qps(t_us, cores);

            let (
                latency_p95_us,
                offered_qps,
                normalized_perf,
                qos_met,
                qos_target_us,
                iso_latency_p95_us,
                util,
            );
            match (job.spec.class(), job.qos) {
                (JobClass::LatencyCritical, Some(spec)) => {
                    let load = job.spec.load.at(self.time_s);
                    let lambda = spec.qps_at_load(load);
                    let mut p95 = tail_latency_us(self.tail, lambda, mu, t_us, cores);
                    if with_noise && !self.noise.is_none() {
                        p95 *= self.noise.latency_factor(&mut self.rng);
                    }
                    let cores_full = self.catalog.units(ResourceKind::Cores);
                    let mu_iso = capacity_qps(job.iso_time_us, cores_full);
                    let iso_p95 =
                        tail_latency_us(self.tail, lambda, mu_iso, job.iso_time_us, cores_full);
                    latency_p95_us = p95;
                    offered_qps = lambda;
                    normalized_perf = (iso_p95 / p95).min(1.0);
                    qos_met = Some(spec.met_by(p95));
                    qos_target_us = Some(spec.target_us);
                    iso_latency_p95_us = Some(iso_p95);
                    util = (lambda / mu).min(1.0);
                }
                _ => {
                    let cores_full = self.catalog.units(ResourceKind::Cores);
                    let mut tput =
                        capacity_qps(t_us, cores) / capacity_qps(job.iso_time_us, cores_full);
                    if with_noise && !self.noise.is_none() {
                        tput *= self.noise.throughput_factor(&mut self.rng);
                    }
                    latency_p95_us = t_us * tail_factor(self.tail.quantile);
                    offered_qps = 0.0;
                    normalized_perf = tput;
                    qos_met = None;
                    qos_target_us = None;
                    iso_latency_p95_us = None;
                    util = 1.0;
                }
            }

            let counters = CounterSample::derive(&job.profile, alloc, &self.catalog, util);
            records.push(JobObservation {
                workload: job.spec.workload,
                class: job.spec.class(),
                latency_p95_us,
                offered_qps,
                normalized_perf,
                qos_met,
                qos_target_us,
                iso_latency_p95_us,
                counters,
            });
        }
        Observation { time_s: self.time_s, window_s: self.window_s, jobs: records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn two_job_server(seed: u64) -> Server {
        Server::new(
            ResourceCatalog::testbed(),
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.5),
                JobSpec::background(WorkloadId::Blackscholes),
            ],
            seed,
        )
        .unwrap()
    }

    #[test]
    fn observe_advances_time_and_counts_samples() {
        let mut s = two_job_server(1);
        let p = Partition::equal_share(s.catalog(), 2).unwrap();
        assert_eq!(s.samples_observed(), 0);
        let before = s.time_s();
        s.observe(&p);
        assert_eq!(s.samples_observed(), 1);
        assert!(s.time_s() >= before + s.window_s());
    }

    #[test]
    fn changing_partition_costs_enforcement() {
        let mut s = two_job_server(2);
        let p = Partition::equal_share(s.catalog(), 2).unwrap();
        s.observe(&p);
        let base = s.enforcement_overhead_ms();
        let q = p.transfer(ResourceKind::Cores, 1, 0, 2).unwrap();
        s.observe(&q);
        assert!(s.enforcement_overhead_ms() > base);
        // Re-applying the same partition is free.
        let now = s.enforcement_overhead_ms();
        s.observe(&q);
        assert_eq!(s.enforcement_overhead_ms(), now);
    }

    #[test]
    fn ground_truth_is_deterministic_and_time_free() {
        let s = two_job_server(3);
        let p = Partition::equal_share(s.catalog(), 2).unwrap();
        let a = s.ground_truth(&p);
        let b = s.ground_truth(&p);
        assert_eq!(a, b);
        assert_eq!(s.samples_observed(), 0);
    }

    #[test]
    fn same_seed_same_observations() {
        let mut a = two_job_server(7);
        let mut b = two_job_server(7);
        let p = Partition::equal_share(a.catalog(), 2).unwrap();
        for _ in 0..5 {
            assert_eq!(a.observe(&p), b.observe(&p));
        }
    }

    #[test]
    fn lc_job_meets_qos_with_generous_allocation_at_low_load() {
        let s = Server::new(
            ResourceCatalog::testbed(),
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
                JobSpec::background(WorkloadId::Swaptions),
            ],
            5,
        )
        .unwrap();
        let generous = Partition::max_for_job(s.catalog(), 2, 0).unwrap();
        let obs = s.ground_truth(&generous);
        assert_eq!(
            obs.jobs[0].qos_met,
            Some(true),
            "p95 {} target {:?}",
            obs.jobs[0].latency_p95_us,
            obs.jobs[0].qos_target_us
        );
    }

    #[test]
    fn lc_job_violates_qos_when_starved_at_high_load() {
        let s = Server::new(
            ResourceCatalog::testbed(),
            vec![
                JobSpec::latency_critical(WorkloadId::ImgDnn, 0.9),
                JobSpec::background(WorkloadId::Streamcluster),
            ],
            5,
        )
        .unwrap();
        // Give nearly everything to the BG job.
        let starved = Partition::max_for_job(s.catalog(), 2, 1).unwrap();
        let obs = s.ground_truth(&starved);
        assert_eq!(obs.jobs[0].qos_met, Some(false));
        assert_eq!(obs.jobs[1].qos_met, None);
    }

    #[test]
    fn bg_perf_increases_with_allocation() {
        let s = two_job_server(9);
        let small = Partition::max_for_job(s.catalog(), 2, 0).unwrap();
        let big = Partition::max_for_job(s.catalog(), 2, 1).unwrap();
        let perf_small = s.ground_truth(&small).jobs[1].normalized_perf;
        let perf_big = s.ground_truth(&big).jobs[1].normalized_perf;
        assert!(perf_big > perf_small);
    }

    #[test]
    fn set_load_validates() {
        let mut s = two_job_server(11);
        assert!(s.set_load(0, 0.9).is_ok());
        assert!(matches!(s.set_load(0, 0.0), Err(SimError::InvalidLoad { .. })));
        assert!(matches!(s.set_load(9, 0.5), Err(SimError::JobOutOfRange { .. })));
        assert_eq!(s.load(0), 0.9);
    }

    #[test]
    fn empty_job_list_rejected() {
        let err = Server::new(ResourceCatalog::testbed(), vec![], 0).unwrap_err();
        assert!(matches!(err, SimError::NoJobs));
    }

    #[test]
    fn set_tail_rederives_targets() {
        use crate::queueing::{TailConfig, TailModel};
        let mut s = two_job_server(31);
        let p95_target = s.qos(0).unwrap().target_us;
        s.set_tail(TailConfig { model: TailModel::ProcessorSharing, quantile: 0.99 });
        let p99_target = s.qos(0).unwrap().target_us;
        assert!(p99_target > p95_target, "p99 target must exceed p95 target");
        // BG jobs stay QoS-free.
        assert!(s.qos(1).is_none());
        // Erlang-C server still produces coherent observations.
        s.set_tail(TailConfig { model: TailModel::ErlangC, quantile: 0.95 });
        let p = Partition::equal_share(s.catalog(), 2).unwrap();
        let obs = s.ground_truth(&p);
        assert!(obs.jobs[0].latency_p95_us.is_finite());
        assert!(obs.jobs[0].qos_target_us.unwrap() > 0.0);
    }

    #[test]
    fn profile_override_changes_behavior() {
        use crate::workload::WorkloadProfileBuilder;
        // A memcached with 10x the CPU cost per query sustains far less.
        let heavy =
            WorkloadProfileBuilder::from(WorkloadId::Memcached).cpu_time_us(900.0).build().unwrap();
        let plain = Server::new(
            ResourceCatalog::testbed(),
            vec![JobSpec::latency_critical(WorkloadId::Memcached, 0.5)],
            1,
        )
        .unwrap();
        let custom = Server::new(
            ResourceCatalog::testbed(),
            vec![JobSpec::latency_critical(WorkloadId::Memcached, 0.5).with_profile(heavy)],
            1,
        )
        .unwrap();
        assert!(
            custom.qos(0).unwrap().max_qps < 0.5 * plain.qos(0).unwrap().max_qps,
            "heavier queries must reduce the derived max load"
        );
    }

    #[test]
    fn indices_partition_jobs() {
        let s = Server::new(
            ResourceCatalog::testbed(),
            vec![
                JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
                JobSpec::background(WorkloadId::Canneal),
                JobSpec::latency_critical(WorkloadId::Masstree, 0.3),
            ],
            0,
        )
        .unwrap();
        assert_eq!(s.lc_indices(), vec![0, 2]);
        assert_eq!(s.bg_indices(), vec![1]);
        assert!(s.qos(0).is_some());
        assert!(s.qos(1).is_none());
    }
}
