//! Synthetic per-job performance counters.
//!
//! The real CLITE "observes the performance of each co-located job using
//! performance counters" (paper Sec. 4). The simulator derives a consistent
//! set of counter readings from the performance model so that controllers
//! (and tests) can consume counter-shaped data: CPU utilization, LLC hit
//! rate, memory-bandwidth share consumed, and an IPC proxy.

use serde::{Deserialize, Serialize};

use crate::alloc::JobAllocation;
use crate::perf::{amdahl_speedup, llc_hit_fraction, query_time_us};
use crate::resource::{ResourceCatalog, ResourceKind};
use crate::workload::WorkloadProfile;

/// Counter readings for one job over one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Fraction of the job's allocated cores kept busy (0–1).
    pub cpu_utilization: f64,
    /// LLC hit rate earned by the allocated ways (0–1).
    pub llc_hit_rate: f64,
    /// Fraction of the machine's memory bandwidth the job consumed (0–1).
    pub mem_bw_used_frac: f64,
    /// Instructions-per-cycle proxy: work per unit time normalized to the
    /// job's best case on this machine.
    pub ipc_proxy: f64,
    /// Memory-capacity pressure (0 = working set fits, grows with
    /// thrashing) — the analogue of major-page-fault rate / cgroup memory
    /// PSI, both observable on real hardware.
    pub capacity_pressure: f64,
    /// Fraction of the machine's disk bandwidth the job consumed (0–1),
    /// observable via blkio statistics.
    pub disk_bw_used_frac: f64,
    /// Fraction of the machine's network bandwidth the job consumed (0–1),
    /// observable via qdisc statistics.
    pub net_bw_used_frac: f64,
}

impl CounterSample {
    /// Derives counters for a job running `utilization` (λ/μ for LC jobs,
    /// 1.0 for BG jobs) under `alloc`.
    #[must_use]
    pub fn derive(
        profile: &WorkloadProfile,
        alloc: &JobAllocation,
        catalog: &ResourceCatalog,
        utilization: f64,
    ) -> Self {
        let util = utilization.clamp(0.0, 1.0);
        let ways = f64::from(alloc.units(ResourceKind::LlcWays));
        let hit = llc_hit_fraction(ways, profile.hit_max, profile.ways_sat);

        let t = query_time_us(profile, alloc, catalog);
        let cores = f64::from(alloc.units(ResourceKind::Cores));
        let speedup = amdahl_speedup(cores, profile.parallel_frac);
        // Busy fraction of allocated cores: serial regions idle the rest.
        let cpu_utilization = (util * speedup / cores).clamp(0.0, 1.0);

        // Memory traffic scales with the miss fraction and activity.
        let bw_frac = alloc.fraction(ResourceKind::MemBandwidth, catalog);
        let demand = profile.mem_intensity * (1.0 - hit) * util;
        let mem_bw_used_frac = demand.min(bw_frac);

        // IPC proxy: best-case time over achieved time (≤ 1).
        let best = query_time_us(profile, &JobAllocation::from_units(catalog.all_units()), catalog);
        let ipc_proxy = (best / t).clamp(0.0, 1.0);

        let cap_frac = alloc.fraction(ResourceKind::MemCapacity, catalog);
        let capacity_pressure =
            crate::perf::thrash_factor(cap_frac, profile.working_set_frac, profile.thrash_exp)
                - 1.0;

        let disk_share = alloc.fraction(ResourceKind::DiskBandwidth, catalog);
        let disk_bw_used_frac = (profile.disk_intensity * util).min(disk_share);
        let net_share = alloc.fraction(ResourceKind::NetBandwidth, catalog);
        let net_bw_used_frac = (profile.net_intensity * util).min(net_share);

        Self {
            cpu_utilization,
            llc_hit_rate: hit,
            mem_bw_used_frac,
            ipc_proxy,
            capacity_pressure,
            disk_bw_used_frac,
            net_bw_used_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadId;

    #[test]
    fn counters_in_range() {
        let catalog = ResourceCatalog::testbed();
        for w in WorkloadId::ALL {
            let p = w.profile();
            let alloc = JobAllocation::from_units([3, 3, 3, 3, 3, 3]);
            let c = CounterSample::derive(&p, &alloc, &catalog, 0.7);
            assert!((0.0..=1.0).contains(&c.cpu_utilization));
            assert!((0.0..=1.0).contains(&c.llc_hit_rate));
            assert!((0.0..=1.0).contains(&c.mem_bw_used_frac));
            assert!((0.0..=1.0).contains(&c.ipc_proxy));
        }
    }

    #[test]
    fn bandwidth_use_capped_by_share() {
        let catalog = ResourceCatalog::testbed();
        let p = WorkloadId::Canneal.profile();
        let starved = JobAllocation::from_units([5, 2, 1, 5, 5, 5]);
        let c = CounterSample::derive(&p, &starved, &catalog, 1.0);
        assert!(c.mem_bw_used_frac <= 0.1 + 1e-12);
    }

    #[test]
    fn full_allocation_has_unit_ipc_proxy() {
        let catalog = ResourceCatalog::testbed();
        let p = WorkloadId::ImgDnn.profile();
        let full = JobAllocation::from_units(catalog.all_units());
        let c = CounterSample::derive(&p, &full, &catalog, 1.0);
        assert!((c.ipc_proxy - 1.0).abs() < 1e-12);
    }
}
