//! The emulated isolation layer (paper Table 1).
//!
//! On real hardware, enforcing a new partition means invoking `taskset`,
//! writing Intel CAT/MBA MSRs, and updating cgroup limits — the paper
//! measures this at "less than 100 ms in most cases" and notes it can be
//! overlapped with the previous sample's evaluation. The simulator models
//! the same: applying a partition costs [`EnforcementReport::overhead_ms`]
//! of simulated time and produces a per-resource action log, so overhead
//! accounting in the experiments matches the paper's.

use serde::Serialize;

use crate::alloc::Partition;
use crate::resource::ResourceKind;

/// A single isolation action (one tool invocation) in an enforcement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IsolationAction {
    /// Resource being repartitioned.
    pub resource: ResourceKind,
    /// Tool that would perform it on real hardware (Table 1).
    pub tool: &'static str,
    /// Number of jobs whose share of this resource changed.
    pub jobs_changed: usize,
}

/// Result of applying a partition through the isolation layer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnforcementReport {
    /// Actions taken, one per resource that changed.
    pub actions: Vec<IsolationAction>,
    /// Simulated enforcement latency in milliseconds.
    pub overhead_ms: f64,
}

impl EnforcementReport {
    /// Whether the new partition differed from the old at all.
    #[must_use]
    pub fn changed(&self) -> bool {
        !self.actions.is_empty()
    }
}

/// Per-resource enforcement cost in milliseconds. Core re-pinning is the
/// most expensive (task migration); MSR writes are cheap.
fn cost_ms(resource: ResourceKind) -> f64 {
    match resource {
        ResourceKind::Cores => 40.0,
        ResourceKind::LlcWays => 5.0,
        ResourceKind::MemBandwidth => 5.0,
        ResourceKind::MemCapacity => 20.0,
        ResourceKind::DiskBandwidth => 10.0,
        ResourceKind::NetBandwidth => 10.0,
    }
}

/// Computes the enforcement report for switching from `old` to `new`.
///
/// Only resources whose allocation actually changed incur cost; an
/// unchanged partition is free (the layer is idempotent).
#[must_use]
pub fn enforce(old: &Partition, new: &Partition) -> EnforcementReport {
    let mut actions = Vec::new();
    let mut overhead_ms = 0.0;
    for r in ResourceKind::ALL {
        let jobs_changed = (0..old.job_count().min(new.job_count()))
            .filter(|&j| old.units(j, r) != new.units(j, r))
            .count();
        if jobs_changed > 0 {
            overhead_ms += cost_ms(r);
            actions.push(IsolationAction { resource: r, tool: r.isolation_tool(), jobs_changed });
        }
    }
    EnforcementReport { actions, overhead_ms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceCatalog;

    #[test]
    fn identical_partitions_are_free() {
        let c = ResourceCatalog::testbed();
        let p = Partition::equal_share(&c, 3).unwrap();
        let r = enforce(&p, &p);
        assert!(!r.changed());
        assert_eq!(r.overhead_ms, 0.0);
    }

    #[test]
    fn changed_resource_logged_with_tool() {
        let c = ResourceCatalog::testbed();
        let p = Partition::equal_share(&c, 2).unwrap();
        let q = p.transfer(ResourceKind::LlcWays, 0, 1, 1).unwrap();
        let r = enforce(&p, &q);
        assert!(r.changed());
        assert_eq!(r.actions.len(), 1);
        assert_eq!(r.actions[0].resource, ResourceKind::LlcWays);
        assert_eq!(r.actions[0].tool, "Intel CAT");
        assert_eq!(r.actions[0].jobs_changed, 2);
        assert!(r.overhead_ms > 0.0);
    }

    #[test]
    fn full_reshuffle_under_100ms() {
        // The paper: "less than 100 ms in most cases".
        let c = ResourceCatalog::testbed();
        let p = Partition::equal_share(&c, 4).unwrap();
        let q = Partition::max_for_job(&c, 4, 0).unwrap();
        let r = enforce(&p, &q);
        assert!(r.overhead_ms <= 100.0, "overhead {} ms", r.overhead_ms);
    }
}
