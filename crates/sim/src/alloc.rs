//! Resource partitions: the allocation matrix over jobs × resources.
//!
//! A *configuration* in the paper is one assignment of every resource's
//! units to every co-located job — e.g. "1 core and 7 cache ways to the LC
//! job, 3 cores and 4 ways to the BG job". [`Partition`] represents one such
//! configuration and maintains the paper's feasibility invariants (Eq. 5 and
//! Eq. 6):
//!
//! 1. every job holds **at least one unit** of every resource, and
//! 2. per-resource allocations **sum to the catalog's unit count**.
//!
//! The natural neighbourhood in this space is the *unit transfer*: move one
//! unit of one resource from one job to another. Both PARTIES (explicitly)
//! and CLITE's acquisition maximizer (as its hill-climbing move) are built
//! on it.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::resource::{ResourceCatalog, ResourceKind, NUM_RESOURCES};
use crate::SimError;

/// Units of every resource held by a single job (one row of a [`Partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobAllocation {
    units: [u32; NUM_RESOURCES],
}

impl JobAllocation {
    /// Allocation holding exactly one unit of every resource (the floor the
    /// feasibility constraints guarantee every job).
    #[must_use]
    pub fn floor() -> Self {
        Self { units: [1; NUM_RESOURCES] }
    }

    /// Allocation from explicit unit counts in [`ResourceKind::ALL`] order.
    #[must_use]
    pub fn from_units(units: [u32; NUM_RESOURCES]) -> Self {
        Self { units }
    }

    /// Units of one resource.
    #[must_use]
    pub fn units(&self, resource: ResourceKind) -> u32 {
        self.units[resource.index()]
    }

    /// All unit counts in canonical order.
    #[must_use]
    pub fn all_units(&self) -> [u32; NUM_RESOURCES] {
        self.units
    }

    /// Fraction of the catalog's units this job holds for `resource`.
    #[must_use]
    pub fn fraction(&self, resource: ResourceKind, catalog: &ResourceCatalog) -> f64 {
        f64::from(self.units(resource)) / f64::from(catalog.units(resource))
    }

    fn set(&mut self, resource: ResourceKind, units: u32) {
        self.units[resource.index()] = units;
    }
}

impl fmt::Display for JobAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} cores, {} ways, {} bw, {} cap, {} disk, {} net]",
            self.units[0],
            self.units[1],
            self.units[2],
            self.units[3],
            self.units[4],
            self.units[5]
        )
    }
}

/// A single-unit resource move between two jobs — the identity of one
/// neighbourhood edge. `from` donates one unit of `resource` to `to`;
/// every other allocation is unchanged, which is what makes incremental
/// evaluation of neighbours possible (see
/// [`Partition::for_each_neighbor_transfer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Transfer {
    /// The resource a unit of which moves.
    pub resource: ResourceKind,
    /// Donor job index.
    pub from: usize,
    /// Recipient job index.
    pub to: usize,
}

/// One feasible resource-partition configuration over all co-located jobs.
///
/// Invariants (checked on construction and preserved by every mutator):
/// every job has ≥ 1 unit of each resource, and each resource's column sums
/// to the catalog's unit count.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    catalog: ResourceCatalog,
    rows: Vec<JobAllocation>,
}

impl Partition {
    /// Builds a partition from explicit rows, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns an error if any job has zero units of a resource
    /// ([`SimError::BelowMinimumAllocation`]) or a column does not sum to
    /// the catalog's unit count ([`SimError::AllocationSumMismatch`]).
    pub fn from_rows(catalog: ResourceCatalog, rows: Vec<JobAllocation>) -> Result<Self, SimError> {
        if rows.is_empty() {
            return Err(SimError::NoJobs);
        }
        for r in ResourceKind::ALL {
            let mut sum = 0u32;
            for (j, row) in rows.iter().enumerate() {
                let u = row.units(r);
                if u == 0 {
                    return Err(SimError::BelowMinimumAllocation { job: j, resource: r });
                }
                sum += u;
            }
            let expected = catalog.units(r);
            if sum != expected {
                return Err(SimError::AllocationSumMismatch { resource: r, expected, actual: sum });
            }
        }
        Ok(Self { catalog, rows })
    }

    /// The paper's first bootstrapping sample: every resource divided as
    /// equally as possible among all co-located jobs (any remainder goes to
    /// the lowest-indexed jobs, one extra unit each).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyJobs`] if some resource has fewer units
    /// than jobs.
    pub fn equal_share(catalog: &ResourceCatalog, jobs: usize) -> Result<Self, SimError> {
        check_supports(catalog, jobs)?;
        let mut rows = vec![JobAllocation::floor(); jobs];
        for r in ResourceKind::ALL {
            let total = catalog.units(r);
            let base = total / jobs as u32;
            let extra = (total % jobs as u32) as usize;
            for (j, row) in rows.iter_mut().enumerate() {
                row.set(r, base + u32::from(j < extra));
            }
        }
        Self::from_rows(*catalog, rows)
    }

    /// The paper's second kind of bootstrapping sample: job `job` receives
    /// the maximum possible allocation of every resource while every other
    /// job keeps exactly one unit. These extrema seed the surrogate model
    /// and detect jobs that cannot meet QoS even with everything.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::JobOutOfRange`] for a bad index or
    /// [`SimError::TooManyJobs`] if the catalog cannot host `jobs` jobs.
    pub fn max_for_job(
        catalog: &ResourceCatalog,
        jobs: usize,
        job: usize,
    ) -> Result<Self, SimError> {
        check_supports(catalog, jobs)?;
        if job >= jobs {
            return Err(SimError::JobOutOfRange { job, jobs });
        }
        let mut rows = vec![JobAllocation::floor(); jobs];
        for r in ResourceKind::ALL {
            rows[job].set(r, catalog.max_for_job(r, jobs));
        }
        Self::from_rows(*catalog, rows)
    }

    /// A uniformly random feasible partition (used by RAND+ and as restart
    /// points for acquisition maximization).
    ///
    /// Sampling is per resource: a uniformly random composition of the unit
    /// count into `jobs` positive parts via the stars-and-bars bijection.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyJobs`] if the catalog cannot host `jobs`.
    pub fn random<R: Rng + ?Sized>(
        catalog: &ResourceCatalog,
        jobs: usize,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        check_supports(catalog, jobs)?;
        let mut rows = vec![JobAllocation::floor(); jobs];
        for r in ResourceKind::ALL {
            let parts = random_composition(catalog.units(r), jobs, rng);
            for (row, units) in rows.iter_mut().zip(parts) {
                row.set(r, units);
            }
        }
        Self::from_rows(*catalog, rows)
    }

    /// Number of co-located jobs (rows).
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.rows.len()
    }

    /// The catalog this partition is feasible for.
    #[must_use]
    pub fn catalog(&self) -> &ResourceCatalog {
        &self.catalog
    }

    /// Allocation row of one job.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn job(&self, job: usize) -> &JobAllocation {
        &self.rows[job]
    }

    /// All rows in job order.
    #[must_use]
    pub fn rows(&self) -> &[JobAllocation] {
        &self.rows
    }

    /// Units of `resource` held by `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn units(&self, job: usize, resource: ResourceKind) -> u32 {
        self.rows[job].units(resource)
    }

    /// Fraction of `resource` held by `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn fraction(&self, job: usize, resource: ResourceKind) -> f64 {
        self.rows[job].fraction(resource, &self.catalog)
    }

    /// Replaces one job's row with another job's-sized row by *copying*:
    /// used by dropout-copy, which freezes the best job's allocation. The
    /// donor units are rebalanced from/to the remaining jobs so the simplex
    /// constraint still holds; the remaining jobs absorb the difference
    /// proportionally (never dropping below one unit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::JobOutOfRange`] for a bad index, or
    /// [`SimError::InvalidTransfer`] if the remaining jobs cannot absorb the
    /// difference.
    pub fn with_frozen_row(&self, job: usize, frozen: &JobAllocation) -> Result<Self, SimError> {
        if job >= self.rows.len() {
            return Err(SimError::JobOutOfRange { job, jobs: self.rows.len() });
        }
        let mut rows = self.rows.clone();
        for r in ResourceKind::ALL {
            let want = frozen.units(r);
            let have = rows[job].units(r);
            rows[job].set(r, want);
            if want > have {
                // Take (want - have) units from other jobs, richest first.
                let mut need = want - have;
                while need > 0 {
                    let donor = richest_other(&rows, job, r).ok_or(SimError::InvalidTransfer {
                        resource: r,
                        from: job,
                        to: job,
                    })?;
                    let du = rows[donor].units(r);
                    let give = need.min(du - 1);
                    if give == 0 {
                        return Err(SimError::InvalidTransfer {
                            resource: r,
                            from: donor,
                            to: job,
                        });
                    }
                    rows[donor].set(r, du - give);
                    need -= give;
                }
            } else if have > want {
                // Donate the surplus to the poorest other job.
                let mut surplus = have - want;
                while surplus > 0 {
                    let recipient = poorest_other(&rows, job, r)
                        .ok_or(SimError::InvalidTransfer { resource: r, from: job, to: job })?;
                    let ru = rows[recipient].units(r);
                    rows[recipient].set(r, ru + 1);
                    surplus -= 1;
                }
            }
        }
        Self::from_rows(self.catalog, rows)
    }

    /// Moves `amount` units of `resource` from job `from` to job `to`,
    /// returning the new partition. This is the canonical neighbourhood
    /// move; it preserves both invariants by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTransfer`] if the donor would fall below
    /// one unit, and [`SimError::JobOutOfRange`] for bad indices.
    pub fn transfer(
        &self,
        resource: ResourceKind,
        from: usize,
        to: usize,
        amount: u32,
    ) -> Result<Self, SimError> {
        let jobs = self.rows.len();
        if from >= jobs {
            return Err(SimError::JobOutOfRange { job: from, jobs });
        }
        if to >= jobs {
            return Err(SimError::JobOutOfRange { job: to, jobs });
        }
        if from == to || amount == 0 {
            return Err(SimError::InvalidTransfer { resource, from, to });
        }
        let donor = self.rows[from].units(resource);
        if donor <= amount {
            return Err(SimError::InvalidTransfer { resource, from, to });
        }
        let mut rows = self.rows.clone();
        rows[from].set(resource, donor - amount);
        let ru = rows[to].units(resource);
        rows[to].set(resource, ru + amount);
        Self::from_rows(self.catalog, rows)
    }

    /// All single-unit-transfer neighbours of this partition, optionally
    /// keeping one job's row frozen (dropout-copy).
    ///
    /// See also [`Transfer`] and [`Partition::for_each_neighbor_transfer`].
    ///
    /// Materializes one `Partition` clone per neighbour; search loops that
    /// only need to *evaluate* each neighbour should use
    /// [`Partition::for_each_neighbor`] instead.
    #[must_use]
    pub fn neighbors(&self, frozen_job: Option<usize>) -> Vec<Partition> {
        let mut out = Vec::with_capacity(self.neighbor_count(frozen_job));
        self.for_each_neighbor(frozen_job, |p| out.push(p.clone()));
        out
    }

    /// Visits every single-unit-transfer neighbour without materializing
    /// it: one shared scratch partition is mutated in place per move and
    /// reverted after the callback returns. Visit order is identical to
    /// [`Partition::neighbors`] (resource-major, then donor, then
    /// recipient), which is what keeps visitor-based hill climbing
    /// byte-identical to the old clone-per-neighbour code.
    pub fn for_each_neighbor(&self, frozen_job: Option<usize>, mut visit: impl FnMut(&Partition)) {
        self.for_each_neighbor_transfer(frozen_job, |p, _| visit(p));
    }

    /// [`Partition::for_each_neighbor`], additionally passing the
    /// [`Transfer`] that produced each neighbour from `self`. Evaluators
    /// that maintain per-point state (e.g. cached GP cross-distances) use
    /// the transfer to update incrementally — a neighbour differs from
    /// `self` in exactly the two allocations the transfer names.
    pub fn for_each_neighbor_transfer(
        &self,
        frozen_job: Option<usize>,
        mut visit: impl FnMut(&Partition, Transfer),
    ) {
        let jobs = self.rows.len();
        let mut work = self.clone();
        for r in ResourceKind::ALL {
            for from in 0..jobs {
                let donor = self.rows[from].units(r);
                if Some(from) == frozen_job || donor <= 1 {
                    continue;
                }
                for to in 0..jobs {
                    if to == from || Some(to) == frozen_job {
                        continue;
                    }
                    let recipient = self.rows[to].units(r);
                    work.rows[from].set(r, donor - 1);
                    work.rows[to].set(r, recipient + 1);
                    visit(&work, Transfer { resource: r, from, to });
                    work.rows[from].set(r, donor);
                    work.rows[to].set(r, recipient);
                }
            }
        }
    }

    /// Number of neighbours [`Partition::for_each_neighbor`] would visit,
    /// without visiting them.
    #[must_use]
    pub fn neighbor_count(&self, frozen_job: Option<usize>) -> usize {
        let jobs = self.rows.len();
        let frozen_job = frozen_job.filter(|&f| f < jobs);
        // A valid donor is never the frozen job, so each donor sees every
        // other job as recipient except the frozen one.
        let recipients = jobs - 1 - usize::from(frozen_job.is_some());
        let mut count = 0;
        for r in ResourceKind::ALL {
            for from in 0..jobs {
                if Some(from) == frozen_job || self.rows[from].units(r) <= 1 {
                    continue;
                }
                count += recipients;
            }
        }
        count
    }

    /// The `index`-th neighbour in [`Partition::for_each_neighbor`] order,
    /// built directly (one transfer, no intermediate clones). Returns
    /// `None` when `index >= neighbor_count(frozen_job)` — this is what
    /// lets a random perturbation sample one transfer instead of
    /// materializing the whole neighbour list.
    #[must_use]
    pub fn nth_neighbor(&self, frozen_job: Option<usize>, index: usize) -> Option<Partition> {
        let jobs = self.rows.len();
        let mut remaining = index;
        for r in ResourceKind::ALL {
            for from in 0..jobs {
                if Some(from) == frozen_job || self.rows[from].units(r) <= 1 {
                    continue;
                }
                for to in 0..jobs {
                    if to == from || Some(to) == frozen_job {
                        continue;
                    }
                    if remaining == 0 {
                        return Some(
                            self.transfer(r, from, to, 1).expect("guards ensure validity"),
                        );
                    }
                    remaining -= 1;
                }
            }
        }
        None
    }

    /// Normalized feature vector (job-major fractions), the encoding the
    /// surrogate model sees: `jobs × NUM_RESOURCES` values in `(0, 1]`.
    #[must_use]
    pub fn features(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.rows.len() * NUM_RESOURCES);
        self.features_into(&mut v);
        v
    }

    /// [`Partition::features`] into a caller-provided buffer — the
    /// allocation-free twin used by the acquisition hot loop, which encodes
    /// tens of thousands of candidates per `suggest()`.
    pub fn features_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.rows.len() * NUM_RESOURCES);
        for row in &self.rows {
            for r in ResourceKind::ALL {
                out.push(row.fraction(r, &self.catalog));
            }
        }
    }

    /// Euclidean distance between the feature encodings of two partitions
    /// (RAND+ uses this to discard near-duplicate samples).
    #[must_use]
    pub fn distance(&self, other: &Partition) -> f64 {
        self.features()
            .iter()
            .zip(other.features())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (j, row) in self.rows.iter().enumerate() {
            if j > 0 {
                write!(f, " | ")?;
            }
            write!(f, "job{j} {row}")?;
        }
        Ok(())
    }
}

fn check_supports(catalog: &ResourceCatalog, jobs: usize) -> Result<(), SimError> {
    if jobs == 0 {
        return Err(SimError::NoJobs);
    }
    for r in ResourceKind::ALL {
        if (catalog.units(r) as usize) < jobs {
            return Err(SimError::TooManyJobs { resource: r, units: catalog.units(r), jobs });
        }
    }
    Ok(())
}

fn richest_other(rows: &[JobAllocation], skip: usize, r: ResourceKind) -> Option<usize> {
    rows.iter()
        .enumerate()
        .filter(|(j, row)| *j != skip && row.units(r) > 1)
        .max_by_key(|(_, row)| row.units(r))
        .map(|(j, _)| j)
}

fn poorest_other(rows: &[JobAllocation], skip: usize, r: ResourceKind) -> Option<usize> {
    rows.iter()
        .enumerate()
        .filter(|(j, _)| *j != skip)
        .min_by_key(|(_, row)| row.units(r))
        .map(|(j, _)| j)
}

/// Uniformly random composition of `total` into `parts` positive integers
/// via stars and bars: choose `parts - 1` distinct cut points among
/// `total - 1` gaps.
fn random_composition<R: Rng + ?Sized>(total: u32, parts: usize, rng: &mut R) -> Vec<u32> {
    debug_assert!(total as usize >= parts && parts >= 1);
    if parts == 1 {
        return vec![total];
    }
    // Sample parts-1 distinct cut points in 1..total via partial Fisher-Yates.
    let n = (total - 1) as usize;
    let k = parts - 1;
    let mut gaps: Vec<u32> = (1..total).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        gaps.swap(i, j);
    }
    let mut cuts: Vec<u32> = gaps[..k].to_vec();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut prev = 0u32;
    for c in cuts {
        out.push(c - prev);
        prev = c;
    }
    out.push(total - prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> ResourceCatalog {
        ResourceCatalog::testbed()
    }

    #[test]
    fn equal_share_sums_and_floors() {
        let p = Partition::equal_share(&catalog(), 4).unwrap();
        for r in ResourceKind::ALL {
            let sum: u32 = (0..4).map(|j| p.units(j, r)).sum();
            assert_eq!(sum, catalog().units(r));
            for j in 0..4 {
                assert!(p.units(j, r) >= 1);
            }
        }
        // 11 ways over 4 jobs: 3,3,3,2 (lowest-indexed get the remainder).
        assert_eq!(p.units(0, ResourceKind::LlcWays), 3);
        assert_eq!(p.units(3, ResourceKind::LlcWays), 2);
    }

    #[test]
    fn max_for_job_is_extreme() {
        let p = Partition::max_for_job(&catalog(), 3, 1).unwrap();
        assert_eq!(p.units(1, ResourceKind::Cores), 8);
        assert_eq!(p.units(0, ResourceKind::Cores), 1);
        assert_eq!(p.units(2, ResourceKind::Cores), 1);
        assert_eq!(p.units(1, ResourceKind::LlcWays), 9);
    }

    #[test]
    fn transfer_moves_one_unit() {
        let p = Partition::equal_share(&catalog(), 2).unwrap();
        let q = p.transfer(ResourceKind::Cores, 0, 1, 2).unwrap();
        assert_eq!(q.units(0, ResourceKind::Cores), p.units(0, ResourceKind::Cores) - 2);
        assert_eq!(q.units(1, ResourceKind::Cores), p.units(1, ResourceKind::Cores) + 2);
    }

    #[test]
    fn transfer_cannot_empty_donor() {
        let p = Partition::max_for_job(&catalog(), 2, 0).unwrap();
        // Job 1 holds exactly 1 core; taking it must fail.
        let err = p.transfer(ResourceKind::Cores, 1, 0, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTransfer { .. }));
    }

    #[test]
    fn transfer_rejects_self_and_zero() {
        let p = Partition::equal_share(&catalog(), 2).unwrap();
        assert!(p.transfer(ResourceKind::Cores, 0, 0, 1).is_err());
        assert!(p.transfer(ResourceKind::Cores, 0, 1, 0).is_err());
    }

    #[test]
    fn from_rows_validates_sum() {
        let rows = vec![JobAllocation::floor(), JobAllocation::floor()];
        let err = Partition::from_rows(catalog(), rows).unwrap_err();
        assert!(matches!(err, SimError::AllocationSumMismatch { .. }));
    }

    #[test]
    fn from_rows_validates_floor() {
        let mut a = JobAllocation::from_units([10, 11, 10, 10, 10, 10]);
        let b = JobAllocation::from_units([0, 0, 0, 0, 0, 0]);
        a.set(ResourceKind::Cores, 10);
        let err = Partition::from_rows(catalog(), vec![a, b]).unwrap_err();
        assert!(matches!(err, SimError::BelowMinimumAllocation { .. }));
    }

    #[test]
    fn random_partition_is_feasible() {
        let mut rng = StdRng::seed_from_u64(7);
        for jobs in 1..=5 {
            for _ in 0..50 {
                let p = Partition::random(&catalog(), jobs, &mut rng).unwrap();
                assert_eq!(p.job_count(), jobs);
                // from_rows already validated; spot-check fractions.
                for j in 0..jobs {
                    for r in ResourceKind::ALL {
                        assert!(p.fraction(j, r) > 0.0 && p.fraction(j, r) <= 1.0);
                    }
                }
            }
        }
    }

    #[test]
    fn neighbors_are_feasible_and_respect_freeze() {
        let p = Partition::equal_share(&catalog(), 3).unwrap();
        let n = p.neighbors(Some(1));
        assert!(!n.is_empty());
        for q in &n {
            assert_eq!(q.job(1), p.job(1), "frozen row must not change");
        }
        let n_all = p.neighbors(None);
        assert!(n_all.len() > n.len());
    }

    #[test]
    fn visitor_matches_materialized_neighbors() {
        let mut rng = StdRng::seed_from_u64(21);
        for jobs in [2, 3, 5] {
            for frozen in [None, Some(0), Some(jobs - 1)] {
                let p = Partition::random(&catalog(), jobs, &mut rng).unwrap();
                let materialized = p.neighbors(frozen);
                let mut visited = Vec::new();
                p.for_each_neighbor(frozen, |q| visited.push(q.clone()));
                assert_eq!(materialized, visited, "jobs={jobs} frozen={frozen:?}");
                assert_eq!(materialized.len(), p.neighbor_count(frozen));
                for (i, q) in materialized.iter().enumerate() {
                    assert_eq!(p.nth_neighbor(frozen, i).as_ref(), Some(q), "index {i}");
                }
                assert_eq!(p.nth_neighbor(frozen, materialized.len()), None);
            }
        }
    }

    #[test]
    fn visitor_scratch_reverts_between_visits() {
        let p = Partition::equal_share(&catalog(), 3).unwrap();
        let mut seen = 0;
        p.for_each_neighbor(None, |q| {
            // Every visit differs from the base in exactly one transfer.
            let moved: u32 = ResourceKind::ALL
                .iter()
                .map(|&r| (0..3).map(|j| q.units(j, r).abs_diff(p.units(j, r))).sum::<u32>())
                .sum();
            assert_eq!(moved, 2, "one unit out, one unit in");
            seen += 1;
        });
        assert_eq!(seen, p.neighbor_count(None));
    }

    #[test]
    fn features_into_matches_features() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Partition::random(&catalog(), 4, &mut rng).unwrap();
        let mut buf = vec![42.0; 3]; // stale, wrong-sized buffer
        p.features_into(&mut buf);
        assert_eq!(buf, p.features());
    }

    #[test]
    fn features_in_unit_interval() {
        let p = Partition::max_for_job(&catalog(), 4, 2).unwrap();
        let f = p.features();
        assert_eq!(f.len(), 24);
        assert!(f.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn distance_zero_iff_same() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Partition::random(&catalog(), 3, &mut rng).unwrap();
        let q = Partition::random(&catalog(), 3, &mut rng).unwrap();
        assert_eq!(p.distance(&p), 0.0);
        if p != q {
            assert!(p.distance(&q) > 0.0);
        }
    }

    #[test]
    fn frozen_row_copy_rebalances() {
        let p = Partition::equal_share(&catalog(), 3).unwrap();
        let frozen = JobAllocation::from_units([6, 7, 6, 6, 6, 6]);
        let q = p.with_frozen_row(0, &frozen).unwrap();
        assert_eq!(q.job(0).all_units(), frozen.all_units());
        // Still feasible (validated by from_rows inside).
        for r in ResourceKind::ALL {
            let sum: u32 = (0..3).map(|j| q.units(j, r)).sum();
            assert_eq!(sum, catalog().units(r));
        }
    }

    #[test]
    fn composition_covers_total() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let parts = random_composition(11, 4, &mut rng);
            assert_eq!(parts.len(), 4);
            assert_eq!(parts.iter().sum::<u32>(), 11);
            assert!(parts.iter().all(|&x| x >= 1));
        }
    }
}
