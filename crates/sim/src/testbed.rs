//! The testbed abstraction: what search code is allowed to see.
//!
//! CLITE's controller is defined against an abstract node interface —
//! **apply a partition, wait one observation window, read the counters**
//! (paper §4, Fig. 5) — not against any particular machine. [`Testbed`]
//! captures exactly that contract plus the job metadata every policy needs
//! (classes, QoS specs, catalog, load), so the whole search stack
//! (`clite`, `clite-policies`, `clite-cluster`, `clite-bench`) is generic
//! over the backend. [`crate::server::Server`] is one adapter; this module
//! ships two more:
//!
//! * [`MemoizedTestbed`] — caches observations keyed by
//!   (workloads, load vector, partition), so brute-force sweeps (ORACLE,
//!   the frontier experiments) and steady-state monitoring loops stop
//!   re-simulating identical configurations;
//! * [`TestbedFactory`] / [`ServerFactory`] — deferred construction, used
//!   by the cluster scheduler to build per-node testbeds (including inside
//!   worker threads in its threaded admission mode).
//!
//! Ground truth is privileged: it lives on [`OracleTestbed`], a separate
//! supertrait-extending trait, so code generic over plain [`Testbed`]
//! (every online policy) cannot reach the noise-free evaluation even by
//! accident.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::alloc::Partition;
use crate::metrics::Observation;
use crate::queueing::QosSpec;
use crate::resource::ResourceCatalog;
use crate::server::{JobSpec, Server};
use crate::workload::{JobClass, WorkloadId};
use crate::SimError;

/// The abstract co-location node every search algorithm runs against.
///
/// The mutating core is the paper's observation loop, split in two so
/// backends can intercept each half: [`Testbed::enforce`] applies a
/// partition through the isolation layer, [`Testbed::observe_window`] runs
/// one observation window and reads the (noisy) counters. The provided
/// [`Testbed::observe`] composes them with the legacy panic-on-misuse
/// contract that controllers rely on.
pub trait Testbed {
    /// The resource catalog of this machine.
    fn catalog(&self) -> &ResourceCatalog;

    /// Number of co-located jobs.
    fn job_count(&self) -> usize;

    /// Job specs in job order.
    fn job_specs(&self) -> Vec<JobSpec>;

    /// Workload of job `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    fn workload(&self, job: usize) -> WorkloadId;

    /// Job class of job `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    fn class(&self, job: usize) -> JobClass;

    /// QoS spec of job `job` (`None` for BG jobs).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    fn qos(&self, job: usize) -> Option<QosSpec>;

    /// Current load fraction of job `job` (1.0 for BG jobs).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    fn load(&self, job: usize) -> f64;

    /// Replaces an LC job's load schedule with a constant fraction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::JobOutOfRange`] or [`SimError::InvalidLoad`].
    fn set_load(&mut self, job: usize, load_frac: f64) -> Result<(), SimError>;

    /// Current simulated time in seconds.
    fn time_s(&self) -> f64;

    /// The observation window length in seconds (paper: 2 s).
    fn window_s(&self) -> f64;

    /// Number of observation windows run so far — the paper's "number of
    /// configurations sampled" overhead metric (Fig. 15a).
    fn samples_observed(&self) -> u64;

    /// Applies `partition` through the isolation layer, making it current.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::JobCountMismatch`] if `partition` does not have
    /// one row per co-located job, or [`SimError::CatalogMismatch`] if it
    /// was built against a different catalog.
    fn enforce(&mut self, partition: &Partition) -> Result<(), SimError>;

    /// Runs one observation window under the current partition and reads
    /// the counters. Advances simulated time by one window.
    ///
    /// Backends that can fail a window (real hardware, the fault-injection
    /// layer) override [`Testbed::try_observe_window`] instead; this
    /// infallible form is the legacy contract kept for backends whose
    /// windows always produce counters.
    fn observe_window(&mut self) -> Observation;

    /// Fallible form of [`Testbed::observe_window`]: runs one window and
    /// reads the counters, or reports *why* the window produced none.
    /// Time still advances on a faulted window — the window was spent, its
    /// counters just never arrived. The default delegates to the
    /// infallible method; fault-capable backends override this.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] fault variant (dropped window, deadline
    /// timeout, node crash) when the window yields no usable counters.
    fn try_observe_window(&mut self) -> Result<Observation, SimError> {
        Ok(self.observe_window())
    }

    /// Advances simulated time by one window length without measuring.
    fn advance_window(&mut self);

    /// Applies `partition` and runs one observation window, surfacing
    /// every failure as a typed error — the form the hardened controller
    /// hot path uses.
    ///
    /// # Errors
    ///
    /// Propagates [`Testbed::enforce`] rejections and
    /// [`Testbed::try_observe_window`] faults.
    fn try_observe(&mut self, partition: &Partition) -> Result<Observation, SimError> {
        self.enforce(partition)?;
        self.try_observe_window()
    }

    /// Applies `partition` and runs one observation window.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not have one row per co-located job or
    /// was built against a different catalog (a controller bug, not a
    /// runtime condition), **or** if the backend faults the window — use
    /// [`Testbed::try_observe`] anywhere faults are survivable.
    fn observe(&mut self, partition: &Partition) -> Observation {
        self.try_observe(partition).expect("observe: partition must match and window must measure")
    }

    /// Indices of the latency-critical jobs.
    fn lc_indices(&self) -> Vec<usize> {
        (0..self.job_count()).filter(|&j| self.class(j) == JobClass::LatencyCritical).collect()
    }

    /// Indices of the background jobs.
    fn bg_indices(&self) -> Vec<usize> {
        (0..self.job_count()).filter(|&j| self.class(j) == JobClass::Background).collect()
    }
}

/// Privileged extension for offline schemes: noise-free, time-free
/// evaluation of a partition. Kept off [`Testbed`] so code generic over
/// the plain trait (every online policy) cannot reach ground truth.
pub trait OracleTestbed: Testbed {
    /// Noise-free, time-free evaluation of `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not have one row per co-located job.
    fn ground_truth(&self, partition: &Partition) -> Observation;
}

impl Testbed for Server {
    fn catalog(&self) -> &ResourceCatalog {
        Server::catalog(self)
    }

    fn job_count(&self) -> usize {
        Server::job_count(self)
    }

    fn job_specs(&self) -> Vec<JobSpec> {
        Server::job_specs(self)
    }

    fn workload(&self, job: usize) -> WorkloadId {
        Server::workload(self, job)
    }

    fn class(&self, job: usize) -> JobClass {
        Server::class(self, job)
    }

    fn qos(&self, job: usize) -> Option<QosSpec> {
        Server::qos(self, job)
    }

    fn load(&self, job: usize) -> f64 {
        Server::load(self, job)
    }

    fn set_load(&mut self, job: usize, load_frac: f64) -> Result<(), SimError> {
        Server::set_load(self, job, load_frac)
    }

    fn time_s(&self) -> f64 {
        Server::time_s(self)
    }

    fn window_s(&self) -> f64 {
        Server::window_s(self)
    }

    fn samples_observed(&self) -> u64 {
        Server::samples_observed(self)
    }

    fn enforce(&mut self, partition: &Partition) -> Result<(), SimError> {
        Server::enforce(self, partition)
    }

    fn observe_window(&mut self) -> Observation {
        Server::observe_window(self)
    }

    fn advance_window(&mut self) {
        Server::advance_window(self);
    }
}

impl OracleTestbed for Server {
    fn ground_truth(&self, partition: &Partition) -> Observation {
        Server::ground_truth(self, partition)
    }
}

/// Cache key: the full configuration a measurement depends on. Loads are
/// keyed bit-exactly so any load change invalidates nothing — it simply
/// maps to a different entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ObsKey {
    workloads: Vec<WorkloadId>,
    load_bits: Vec<u64>,
    partition: Partition,
}

impl ObsKey {
    fn capture<T: Testbed>(inner: &T, partition: &Partition) -> Self {
        let jobs = inner.job_count();
        Self {
            workloads: (0..jobs).map(|j| inner.workload(j)).collect(),
            load_bits: (0..jobs).map(|j| inner.load(j).to_bits()).collect(),
            partition: partition.clone(),
        }
    }

    /// Allocation-free equality check against the inner testbed's current
    /// configuration — the hot path of a cache hit.
    fn matches<T: Testbed>(&self, inner: &T, partition: &Partition) -> bool {
        self.partition == *partition
            && self.workloads.len() == inner.job_count()
            && (0..self.workloads.len()).all(|j| {
                self.workloads[j] == inner.workload(j)
                    && self.load_bits[j] == inner.load(j).to_bits()
            })
    }
}

/// Shared observation store behind [`MemoizedTestbed`]. Noisy window
/// observations and noise-free ground truths are kept in separate maps;
/// hit/miss counters cover both.
#[derive(Debug, Default)]
pub struct ObservationCache {
    observed: HashMap<ObsKey, Observation>,
    truths: HashMap<ObsKey, Observation>,
    hits: u64,
    misses: u64,
}

impl ObservationCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache behind an `Arc<Mutex<_>>`, ready to share across
    /// several [`MemoizedTestbed`] instances (e.g. re-seeded ORACLE runs
    /// over the same job mix).
    #[must_use]
    pub fn shared() -> Arc<Mutex<Self>> {
        Arc::new(Mutex::new(Self::new()))
    }

    /// Cache hits so far (windows and ground truths). Wrappers batch
    /// their fast-path replays and flush them on the next slow-path
    /// access, so this can momentarily lag [`MemoizedTestbed::hits`],
    /// which is always exact for its own wrapper.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (windows and ground truths).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct configurations stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observed.len() + self.truths.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty() && self.truths.is_empty()
    }
}

/// A caching backend: wraps any [`Testbed`] and replays the stored
/// observation when the same (workloads, load vector, partition)
/// configuration is measured again, advancing the inner clock without
/// re-simulating the window.
///
/// **Semantics note.** A hit replays the *original* measurement, so for a
/// noisy inner testbed the measurement noise of a configuration is frozen
/// at its first observation. That is exactly right for ORACLE's noise-free
/// sweeps and harmless for steady-state monitoring loops, but it changes
/// the sampling distribution online policies see — do not share a cache
/// across differently-seeded online runs.
///
/// Jobs whose [`JobSpec::profile_override`] replaces the named workload's
/// calibration are keyed by workload name only; never share a cache
/// between testbeds that give the same name different profiles.
#[derive(Debug)]
pub struct MemoizedTestbed<T: Testbed> {
    inner: T,
    cache: Arc<Mutex<ObservationCache>>,
    /// The partition most recently applied through [`Testbed::enforce`].
    /// `Testbed` deliberately does not expose the backend's current
    /// partition, so the wrapper tracks it itself to build cache keys.
    current: Option<Partition>,
    /// One-entry fast path: the key and observation of the last window
    /// served, compared allocation-free before touching the shared map.
    last: Option<(ObsKey, Observation)>,
    /// Fast-path hits not yet folded into the shared cache's counter:
    /// the replay path skips the cache mutex entirely, so its hits are
    /// batched here and flushed on the next slow-path cache access.
    /// [`Self::hits`] always reports the exact total.
    fast_hits: u64,
    /// Windows served through this wrapper (hits + misses), so
    /// [`Testbed::samples_observed`] keeps counting on hits even though
    /// the inner testbed never ran the window.
    windows: u64,
}

impl<T: Testbed> MemoizedTestbed<T> {
    /// Wraps `inner` with a fresh private cache.
    pub fn new(inner: T) -> Self {
        Self::with_shared_cache(inner, ObservationCache::shared())
    }

    /// Wraps `inner` over an existing (possibly shared) cache.
    pub fn with_shared_cache(inner: T, cache: Arc<Mutex<ObservationCache>>) -> Self {
        let windows = inner.samples_observed();
        Self { inner, cache, current: None, last: None, fast_hits: 0, windows }
    }

    /// A handle to the cache, for sharing with another wrapper or for
    /// reading hit statistics.
    #[must_use]
    pub fn shared_cache(&self) -> Arc<Mutex<ObservationCache>> {
        Arc::clone(&self.cache)
    }

    /// Cache hits so far, including this wrapper's not-yet-flushed
    /// fast-path replays.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.cache.lock().expect("observation cache lock").hits + self.fast_hits
    }

    /// Cache misses so far.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.cache.lock().expect("observation cache lock").misses
    }

    /// The wrapped testbed.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps back to the inner testbed.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Testbed> Testbed for MemoizedTestbed<T> {
    fn catalog(&self) -> &ResourceCatalog {
        self.inner.catalog()
    }

    fn job_count(&self) -> usize {
        self.inner.job_count()
    }

    fn job_specs(&self) -> Vec<JobSpec> {
        self.inner.job_specs()
    }

    fn workload(&self, job: usize) -> WorkloadId {
        self.inner.workload(job)
    }

    fn class(&self, job: usize) -> JobClass {
        self.inner.class(job)
    }

    fn qos(&self, job: usize) -> Option<QosSpec> {
        self.inner.qos(job)
    }

    fn load(&self, job: usize) -> f64 {
        self.inner.load(job)
    }

    fn set_load(&mut self, job: usize, load_frac: f64) -> Result<(), SimError> {
        self.inner.set_load(job, load_frac)
    }

    fn time_s(&self) -> f64 {
        self.inner.time_s()
    }

    fn window_s(&self) -> f64 {
        self.inner.window_s()
    }

    fn samples_observed(&self) -> u64 {
        self.windows
    }

    fn enforce(&mut self, partition: &Partition) -> Result<(), SimError> {
        self.inner.enforce(partition)?;
        if self.current.as_ref() != Some(partition) {
            self.current = Some(partition.clone());
        }
        Ok(())
    }

    fn observe_window(&mut self) -> Observation {
        self.windows += 1;
        let t0 = self.inner.time_s();
        let window_s = self.inner.window_s();
        // Fast path: same configuration as the last window served by this
        // wrapper — no key allocation, no map lookup.
        let fast = match (&self.current, &self.last) {
            (Some(current), Some((key, obs))) if key.matches(&self.inner, current) => {
                Some(obs.clone())
            }
            _ => None,
        };
        if let Some(mut obs) = fast {
            obs.time_s = t0;
            obs.window_s = window_s;
            self.inner.advance_window();
            self.fast_hits += 1;
            return obs;
        }
        let Some(current) = self.current.clone() else {
            // No partition has passed through this wrapper's `enforce`
            // (the backend is still on its construction-time partition):
            // measure through without caching.
            let mut cache = self.cache.lock().expect("observation cache lock");
            cache.hits += std::mem::take(&mut self.fast_hits);
            cache.misses += 1;
            drop(cache);
            return self.inner.observe_window();
        };
        let key = ObsKey::capture(&self.inner, &current);
        let cached = {
            let mut cache = self.cache.lock().expect("observation cache lock");
            cache.hits += std::mem::take(&mut self.fast_hits);
            let found = cache.observed.get(&key).cloned();
            match found {
                Some(obs) => {
                    cache.hits += 1;
                    Some(obs)
                }
                None => {
                    cache.misses += 1;
                    None
                }
            }
        };
        let obs = match cached {
            Some(mut obs) => {
                obs.time_s = t0;
                obs.window_s = window_s;
                self.inner.advance_window();
                obs
            }
            None => {
                let obs = self.inner.observe_window();
                self.cache
                    .lock()
                    .expect("observation cache lock")
                    .observed
                    .insert(key.clone(), obs.clone());
                obs
            }
        };
        self.last = Some((key, obs.clone()));
        obs
    }

    fn advance_window(&mut self) {
        self.inner.advance_window();
    }
}

impl<T: OracleTestbed> OracleTestbed for MemoizedTestbed<T> {
    fn ground_truth(&self, partition: &Partition) -> Observation {
        let key = ObsKey::capture(&self.inner, partition);
        {
            let mut cache = self.cache.lock().expect("observation cache lock");
            let found = cache.truths.get(&key).cloned();
            if let Some(obs) = found {
                cache.hits += 1;
                return obs;
            }
            cache.misses += 1;
        }
        let obs = self.inner.ground_truth(partition);
        self.cache.lock().expect("observation cache lock").truths.insert(key, obs.clone());
        obs
    }
}

/// Deferred testbed construction: how the cluster scheduler materializes a
/// per-node testbed for an admission search (possibly inside a worker
/// thread, so factories must be shareable by reference).
pub trait TestbedFactory {
    /// The testbed type this factory builds.
    type Output: Testbed;

    /// Builds a testbed hosting `jobs` on a machine with `catalog`,
    /// seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the job set cannot be hosted (empty,
    /// over capacity, invalid load).
    fn build(
        &self,
        catalog: ResourceCatalog,
        jobs: Vec<JobSpec>,
        seed: u64,
    ) -> Result<Self::Output, SimError>;
}

/// The default factory: simulated [`Server`] nodes with default
/// measurement noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerFactory;

impl TestbedFactory for ServerFactory {
    type Output = Server;

    fn build(
        &self,
        catalog: ResourceCatalog,
        jobs: Vec<JobSpec>,
        seed: u64,
    ) -> Result<Server, SimError> {
        Server::new(catalog, jobs, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn server(seed: u64) -> Server {
        Server::new(
            ResourceCatalog::testbed(),
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
                JobSpec::background(WorkloadId::Blackscholes),
            ],
            seed,
        )
        .unwrap()
    }

    fn observe_via_trait<T: Testbed>(t: &mut T, p: &Partition) -> Observation {
        t.observe(p)
    }

    #[test]
    fn server_implements_testbed() {
        let mut s = server(1);
        let p = Partition::equal_share(Testbed::catalog(&s), 2).unwrap();
        let obs = observe_via_trait(&mut s, &p);
        assert_eq!(obs.jobs.len(), 2);
        assert_eq!(Testbed::samples_observed(&s), 1);
        assert_eq!(Testbed::lc_indices(&s), vec![0]);
        assert_eq!(Testbed::bg_indices(&s), vec![1]);
    }

    #[test]
    fn memoized_replays_identical_observation_and_advances_time() {
        let mut m = MemoizedTestbed::new(server(2));
        let p = Partition::equal_share(m.catalog(), 2).unwrap();
        let first = m.observe(&p);
        assert_eq!((m.hits(), m.misses()), (0, 1));
        let t1 = m.time_s();
        let second = m.observe(&p);
        assert_eq!((m.hits(), m.misses()), (1, 1));
        // Same measurements, patched timestamp, clock still moving.
        assert_eq!(first.jobs, second.jobs);
        assert!((second.time_s - t1).abs() < 1e-12);
        assert!(m.time_s() >= t1 + m.window_s());
        assert_eq!(m.samples_observed(), 2);
    }

    #[test]
    fn memoized_misses_on_changed_partition_or_load() {
        let mut m = MemoizedTestbed::new(server(3));
        let p = Partition::equal_share(m.catalog(), 2).unwrap();
        m.observe(&p);
        let q = p.transfer(ResourceKind::Cores, 1, 0, 2).unwrap();
        m.observe(&q);
        assert_eq!((m.hits(), m.misses()), (0, 2));
        // Back to the first partition: hit through the shared map even
        // though the one-entry fast path moved on.
        m.observe(&p);
        assert_eq!((m.hits(), m.misses()), (1, 2));
        // A load change means a different configuration entirely.
        m.set_load(0, 0.7).unwrap();
        m.observe(&p);
        assert_eq!((m.hits(), m.misses()), (1, 3));
    }

    #[test]
    fn memoized_ground_truth_cached_and_exact() {
        let m = MemoizedTestbed::new(server(4));
        let p = Partition::equal_share(m.catalog(), 2).unwrap();
        let direct = m.inner().ground_truth(&p);
        let a = OracleTestbed::ground_truth(&m, &p);
        let b = OracleTestbed::ground_truth(&m, &p);
        assert_eq!(a, direct);
        assert_eq!(a, b);
        assert_eq!((m.hits(), m.misses()), (1, 1));
    }

    #[test]
    fn shared_cache_spans_wrappers() {
        let cache = ObservationCache::shared();
        let m1 = MemoizedTestbed::with_shared_cache(server(5), Arc::clone(&cache));
        let p = Partition::equal_share(m1.catalog(), 2).unwrap();
        let a = m1.ground_truth(&p);
        // Different seed, same specs/loads: ground truth is noise-free, so
        // the second wrapper may reuse the first one's evaluation.
        let m2 = MemoizedTestbed::with_shared_cache(server(6), Arc::clone(&cache));
        let b = m2.ground_truth(&p);
        assert_eq!(a, b);
        let guard = cache.lock().unwrap();
        assert_eq!((guard.hits(), guard.misses()), (1, 1));
        assert_eq!(guard.len(), 1);
        assert!(!guard.is_empty());
    }

    #[test]
    fn factory_builds_working_server() {
        let f = ServerFactory;
        let t = f
            .build(
                ResourceCatalog::testbed(),
                vec![JobSpec::latency_critical(WorkloadId::Xapian, 0.3)],
                7,
            )
            .unwrap();
        assert_eq!(Testbed::job_count(&t), 1);
        assert!(f.build(ResourceCatalog::testbed(), vec![], 7).is_err());
    }

    #[test]
    fn enforce_rejects_malformed_partitions_via_trait() {
        let mut s = server(8);
        let wrong_rows = Partition::equal_share(Server::catalog(&s), 3).unwrap();
        assert!(matches!(
            Testbed::enforce(&mut s, &wrong_rows),
            Err(SimError::JobCountMismatch { expected: 2, actual: 3 })
        ));
        let other_catalog = ResourceCatalog::coarse();
        let foreign = Partition::equal_share(&other_catalog, 2).unwrap();
        assert!(matches!(Testbed::enforce(&mut s, &foreign), Err(SimError::CatalogMismatch)));
    }
}
