//! Observation records returned by the server.

use serde::{Deserialize, Serialize};

use crate::counters::CounterSample;
use crate::workload::{JobClass, WorkloadId};

/// Per-job measurements from one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobObservation {
    /// Workload identity of the job.
    pub workload: WorkloadId,
    /// LC or BG.
    pub class: JobClass,
    /// Observed 95th-percentile latency in µs (meaningful for LC jobs;
    /// reported for BG jobs as the per-work-item latency for completeness).
    pub latency_p95_us: f64,
    /// Offered load in QPS (LC jobs; 0 for BG jobs).
    pub offered_qps: f64,
    /// Throughput normalized to isolation performance (`Colo-Perf /
    /// Iso-Perf`); for LC jobs this is the capped `QoS-Target / latency`
    /// performance proxy used when no BG jobs are present.
    pub normalized_perf: f64,
    /// Whether the QoS target was met this window (`None` for BG jobs).
    pub qos_met: Option<bool>,
    /// QoS tail-latency target in µs (`None` for BG jobs).
    pub qos_target_us: Option<f64>,
    /// The p95 this job would see at the same offered load running alone
    /// with the whole machine (`None` for BG jobs) — the `Iso-Perf`
    /// reference for LC jobs.
    pub iso_latency_p95_us: Option<f64>,
    /// Synthetic performance counters for the window.
    pub counters: CounterSample,
}

impl JobObservation {
    /// QoS slack as a ratio: `target / latency` (>1 means slack, <1 means
    /// violation). `None` for BG jobs.
    #[must_use]
    pub fn qos_slack(&self) -> Option<f64> {
        self.qos_target_us.map(|t| t / self.latency_p95_us)
    }

    /// Scale (µs) of the memoryless per-query service model implied by
    /// this window: an exponential latency distribution whose p95 equals
    /// the observed `latency_p95_us` (`scale = p95 / ln 20`, see
    /// [`crate::queueing::tail_factor`]). The observed p95 is itself a
    /// deterministic function of the job's interference/IPC state in the
    /// simulator, so two identical windows imply identical per-query
    /// distributions — the property the load harness's determinism
    /// rests on.
    #[must_use]
    pub fn service_scale_us(&self) -> f64 {
        (self.latency_p95_us / crate::queueing::P95_FACTOR).max(f64::MIN_POSITIVE)
    }
}

/// All per-job measurements from one observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Simulated wall-clock time at the *end* of the window (seconds).
    pub time_s: f64,
    /// Window length in seconds (the paper's observation period: 2 s).
    pub window_s: f64,
    /// One record per co-located job, in job order.
    pub jobs: Vec<JobObservation>,
}

impl Observation {
    /// Whether every LC job met its QoS target this window.
    #[must_use]
    pub fn all_qos_met(&self) -> bool {
        self.jobs.iter().all(|j| j.qos_met != Some(false))
    }

    /// Number of LC jobs violating QoS this window.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.jobs.iter().filter(|j| j.qos_met == Some(false)).count()
    }

    /// Iterator over LC job observations only.
    pub fn lc_jobs(&self) -> impl Iterator<Item = &JobObservation> {
        self.jobs.iter().filter(|j| j.class == JobClass::LatencyCritical)
    }

    /// Iterator over BG job observations only.
    pub fn bg_jobs(&self) -> impl Iterator<Item = &JobObservation> {
        self.jobs.iter().filter(|j| j.class == JobClass::Background)
    }

    /// Arithmetic mean of BG jobs' normalized performance (`None` if there
    /// are no BG jobs).
    #[must_use]
    pub fn mean_bg_perf(&self) -> Option<f64> {
        let perfs: Vec<f64> = self.bg_jobs().map(|j| j.normalized_perf).collect();
        if perfs.is_empty() {
            None
        } else {
            Some(perfs.iter().sum::<f64>() / perfs.len() as f64)
        }
    }

    /// Arithmetic mean of LC jobs' normalized performance (`None` if there
    /// are no LC jobs).
    #[must_use]
    pub fn mean_lc_perf(&self) -> Option<f64> {
        let perfs: Vec<f64> = self.lc_jobs().map(|j| j.normalized_perf).collect();
        if perfs.is_empty() {
            None
        } else {
            Some(perfs.iter().sum::<f64>() / perfs.len() as f64)
        }
    }
}
