//! Tail-latency model and QoS-target derivation (paper Fig. 6).
//!
//! A latency-critical serving job executes independent queries: allocated
//! cores multiply **throughput capacity** while per-query service time
//! `t_q(a)` is set by the cache/bandwidth/capacity allocation (and mildly
//! by intra-query parallelism). We model the job as a processor-sharing
//! queue with capacity `μ(a) = cores / t_q(a)`:
//!
//! ```text
//! p95(λ, a) = ln(20) · t_q(a) / (1 − ρ)      with ρ = λ / μ(a), ρ < 1
//! ```
//!
//! which is flat near `ln(20)·t_q` at low load and blows up as `ρ → 1` —
//! the hockey-stick QPS-vs-p95 curves of the paper's Fig. 6. Following the
//! paper's methodology, the **QoS target** is the latency at the knee of
//! the full-machine isolation curve and the corresponding QPS is the
//! workload's **maximum load** (load fractions elsewhere are fractions of
//! it).
//!
//! One calibration constant, [`LOAD_HEADROOM`], scales the knee QPS into
//! the reported maximum load. On the paper's testbed, several LC jobs at
//! moderate loads plus BG jobs are co-locatable because no benchmark's
//! "100% load" saturates every machine resource at once; the headroom
//! factor reproduces that frontier (loads summing to ≈130% of one machine
//! are just barely co-locatable with ideal partitioning, matching the
//! paper's Fig. 7 feasibility boundary).

use serde::{Deserialize, Serialize};

use crate::perf::{capacity_qps, isolation_time_us};
use crate::resource::ResourceCatalog;
use crate::workload::{WorkloadId, WorkloadProfile};

/// `ln(20)`: the 95th percentile of a unit-rate exponential.
pub const P95_FACTOR: f64 = 2.995_732_273_553_991;

/// Fraction of the knee QPS reported as the workload's maximum load.
///
/// Calibrated against the paper's co-location frontier: with this value,
/// three LC jobs at 30% load plus one BG job are comfortably co-locatable
/// with meaningful BG throughput left over (paper Fig. 13), while load
/// combinations summing far past ~150–190% of one machine become
/// infeasible (the `X` region of Fig. 7/8). On the paper's physical
/// testbed the same effect comes from benchmark "max loads" being bound by
/// a single resource each, so co-located jobs overlap less than their load
/// percentages suggest.
pub const LOAD_HEADROOM: f64 = 0.35;

/// Latency reported for degenerate inputs (zero capacity or service time).
pub const SATURATED_LATENCY_US: f64 = 1.0e9;

/// Utilization beyond which the queueing formula switches to the linear
/// overload regime.
pub const RHO_SOFT_CAP: f64 = 0.95;

/// Latency growth per unit of overload beyond [`RHO_SOFT_CAP`].
pub const OVERLOAD_SLOPE: f64 = 5.0;

/// Which queueing formula turns (load, capacity, service time) into a tail
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TailModel {
    /// Processor-sharing form `ln(1/(1−q))·t_q/(1−ρ)` — the default used
    /// throughout the reproduction (smooth, one parameter).
    #[default]
    ProcessorSharing,
    /// M/M/c with Erlang-C waiting probability: queries wait only when all
    /// servers are busy, so low-utilization latencies hug the service time
    /// more tightly and the knee is sharper.
    ErlangC,
}

/// Tail-latency configuration of a server: the queueing model and the QoS
/// quantile (the paper uses the 95th percentile; PARTIES-style setups
/// often use the 99th).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailConfig {
    /// Queueing formula.
    pub model: TailModel,
    /// Tail quantile in (0, 1), e.g. `0.95`.
    pub quantile: f64,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self { model: TailModel::ProcessorSharing, quantile: 0.95 }
    }
}

/// `ln(1/(1−q))`: the q-quantile of a unit-rate exponential.
#[must_use]
pub fn tail_factor(quantile: f64) -> f64 {
    -(1.0 - quantile).ln()
}

/// Erlang-C waiting probability for `c` servers at offered load `a`
/// Erlangs (`a < c`), via the numerically stable Erlang-B recursion.
#[must_use]
pub fn erlang_c(servers: u32, offered: f64) -> f64 {
    debug_assert!(offered >= 0.0);
    let c = f64::from(servers);
    if offered >= c {
        return 1.0;
    }
    let mut b = 1.0; // Erlang B for k = 0
    for k in 1..=servers {
        let kf = f64::from(k);
        b = offered * b / (kf + offered * b);
    }
    let denom = c - offered * (1.0 - b);
    (c * b / denom).clamp(0.0, 1.0)
}

/// Generalized tail latency (µs) under `config` for per-query service time
/// `service_us`, capacity `mu_qps = servers/service`, offered `lambda_qps`,
/// and `servers` parallel slots.
///
/// Shares the linear overload regime of [`p95_latency_us`] beyond
/// [`RHO_SOFT_CAP`] utilization.
#[must_use]
pub fn tail_latency_us(
    config: TailConfig,
    lambda_qps: f64,
    mu_qps: f64,
    service_us: f64,
    servers: u32,
) -> f64 {
    if mu_qps <= 0.0 || service_us <= 0.0 {
        return SATURATED_LATENCY_US;
    }
    let rho = lambda_qps / mu_qps;
    let factor = tail_factor(config.quantile);
    if rho >= RHO_SOFT_CAP {
        let overload = (rho - RHO_SOFT_CAP).min(100.0);
        return factor * service_us / (1.0 - RHO_SOFT_CAP) * (1.0 + OVERLOAD_SLOPE * overload);
    }
    match config.model {
        TailModel::ProcessorSharing => factor * service_us / (1.0 - rho),
        TailModel::ErlangC => {
            // Sojourn T = S + W: S ~ Exp(1/t); W = 0 with prob 1−C, else
            // Exp(δ) with δ = (c − a)/t. Solve ccdf(x) = 1 − q by bisection.
            let a = lambda_qps * service_us / 1.0e6; // offered Erlangs
            let c_wait = erlang_c(servers, a);
            let mu_s = 1.0 / service_us;
            let delta = (f64::from(servers) - a) / service_us;
            let target = 1.0 - config.quantile;
            let ccdf = |x: f64| -> f64 {
                let s_term = (-mu_s * x).exp();
                if (delta - mu_s).abs() < 1e-12 * mu_s {
                    // Degenerate: equal rates => Gamma(2, mu) tail.
                    (1.0 - c_wait) * s_term + c_wait * (1.0 + mu_s * x) * s_term
                } else {
                    let conv = (delta * s_term - mu_s * (-delta * x).exp()) / (delta - mu_s);
                    (1.0 - c_wait) * s_term + c_wait * conv
                }
            };
            let mut lo = 0.0;
            let mut hi = service_us * factor;
            while ccdf(hi) > target {
                hi *= 2.0;
                if hi > 1e12 {
                    return SATURATED_LATENCY_US;
                }
            }
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if ccdf(mid) > target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        }
    }
}

/// 95th-percentile latency (µs) for service time `service_us` per query,
/// capacity `mu_qps`, and offered load `lambda_qps`.
///
/// Below [`RHO_SOFT_CAP`] utilization this is the processor-sharing form
/// `ln(20)·t_q/(1−ρ)`; beyond it the latency keeps growing *linearly* in
/// the overload ratio (continuous at the cap). An overloaded queue's real
/// latency is unbounded, but a finite graded value keeps the paper's score
/// function (Eq. 3) informative in the infeasible region — a flat penalty
/// would give BO "no specific direction", exactly the failure mode the
/// paper's score-design discussion warns about.
#[must_use]
pub fn p95_latency_us(lambda_qps: f64, mu_qps: f64, service_us: f64) -> f64 {
    if mu_qps <= 0.0 || service_us <= 0.0 {
        return SATURATED_LATENCY_US;
    }
    let rho = lambda_qps / mu_qps;
    let base = P95_FACTOR * service_us;
    if rho < RHO_SOFT_CAP {
        base / (1.0 - rho)
    } else {
        let overload = (rho - RHO_SOFT_CAP).min(100.0);
        base / (1.0 - RHO_SOFT_CAP) * (1.0 + OVERLOAD_SLOPE * overload)
    }
}

/// QoS specification of an LC workload derived from its isolation curve:
/// the knee latency becomes the target, the (headroom-scaled) knee QPS the
/// maximum load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Workload this spec belongs to.
    pub workload: WorkloadId,
    /// 95th-percentile latency target (µs) — the knee of the isolation curve.
    pub target_us: f64,
    /// QPS treated as "100% load" in every experiment.
    pub max_qps: f64,
    /// Zero-load p95 in isolation (µs), for reference.
    pub unloaded_p95_us: f64,
}

impl QosSpec {
    /// Derives the spec for `workload` on `catalog` from the isolation
    /// QPS-vs-p95 curve, locating the knee by the maximum-distance-from-
    /// chord ("kneedle") criterion — mirroring how the paper reads Fig. 6.
    #[must_use]
    pub fn derive(workload: WorkloadId, catalog: &ResourceCatalog) -> Self {
        let profile = workload.profile();
        Self::derive_from_profile(&profile, catalog)
    }

    /// Same as [`QosSpec::derive`] for an explicit profile.
    #[must_use]
    pub fn derive_from_profile(profile: &WorkloadProfile, catalog: &ResourceCatalog) -> Self {
        Self::derive_with(profile, catalog, TailConfig::default())
    }

    /// Derives the spec under an explicit queueing model and tail
    /// quantile, keeping the knee-utilization methodology. The knee is
    /// located on *that model's* isolation curve: Erlang-C on many servers
    /// stays flat far longer than processor sharing, so its knee (and
    /// therefore its maximum load) sits at higher utilization.
    #[must_use]
    pub fn derive_with(
        profile: &WorkloadProfile,
        catalog: &ResourceCatalog,
        config: TailConfig,
    ) -> Self {
        let t_iso = isolation_time_us(profile, catalog);
        let cores = catalog.all_units()[0];
        let mu = capacity_qps(t_iso, cores);
        let knee_util = knee_utilization(config, t_iso, cores);
        Self {
            workload: profile.id,
            target_us: tail_latency_us(config, knee_util * mu, mu, t_iso, cores),
            max_qps: LOAD_HEADROOM * knee_util * mu,
            unloaded_p95_us: tail_latency_us(config, 0.0, mu, t_iso, cores),
        }
    }

    /// Arrival rate (QPS) corresponding to a load fraction of this spec's
    /// maximum load.
    #[must_use]
    pub fn qps_at_load(&self, load_frac: f64) -> f64 {
        self.max_qps * load_frac
    }

    /// Whether an observed p95 meets the target.
    #[must_use]
    pub fn met_by(&self, observed_p95_us: f64) -> bool {
        observed_p95_us <= self.target_us
    }
}

/// One point of an isolation QPS-vs-p95 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load in queries per second.
    pub qps: f64,
    /// Resulting 95th-percentile latency in µs.
    pub p95_us: f64,
}

/// The isolation sweep behind Fig. 6: p95 at `points` evenly spaced loads
/// up to `max_util` of the isolation capacity.
#[must_use]
pub fn isolation_sweep(
    profile: &WorkloadProfile,
    catalog: &ResourceCatalog,
    points: usize,
    max_util: f64,
) -> Vec<SweepPoint> {
    let t_iso = isolation_time_us(profile, catalog);
    let mu = capacity_qps(t_iso, catalog.all_units()[0]);
    (0..points)
        .map(|i| {
            let frac = max_util * (i as f64 + 1.0) / points as f64;
            let qps = mu * frac;
            SweepPoint { qps, p95_us: p95_latency_us(qps, mu, t_iso) }
        })
        .collect()
}

/// Knee utilization of the normalized `1/(1−ρ)` isolation curve on
/// `ρ ∈ (0, 0.95]`: the point farthest below the chord between the curve's
/// endpoints. The processor-sharing curve shape is workload-independent,
/// so this is a constant (≈ 0.78).
#[must_use]
pub fn isolation_knee_utilization() -> f64 {
    kneedle(&|u| 1.0 / (1.0 - u))
}

/// Knee utilization of an arbitrary model's isolation curve (maximum
/// distance below the chord, the "kneedle" criterion).
#[must_use]
pub fn knee_utilization(config: TailConfig, service_us: f64, servers: u32) -> f64 {
    let mu = capacity_qps(service_us, servers);
    kneedle(&|u| tail_latency_us(config, u * mu, mu, service_us, servers))
}

fn kneedle(curve: &dyn Fn(f64) -> f64) -> f64 {
    const N: usize = 400;
    const MAX_UTIL: f64 = 0.95;
    let xs: Vec<f64> = (0..N).map(|i| MAX_UTIL * (i as f64 + 1.0) / N as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&u| curve(u)).collect();

    let (x0, y0) = (xs[0], ys[0]);
    let (x1, y1) = (xs[N - 1], ys[N - 1]);
    let mut best = 0usize;
    let mut best_d = f64::MIN;
    for i in 0..N {
        let nx = (xs[i] - x0) / (x1 - x0);
        let ny = (ys[i] - y0) / (y1 - y0);
        let d = nx - ny;
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    xs[best]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p95_flat_at_zero_load() {
        let p = p95_latency_us(0.0, 10_000.0, 100.0);
        assert!((p - P95_FACTOR * 100.0).abs() < 1e-9);
    }

    #[test]
    fn p95_monotone_in_load() {
        let mu = 5_000.0;
        let mut last = 0.0;
        for i in 1..100 {
            let l = mu * f64::from(i) / 101.0;
            let p = p95_latency_us(l, mu, 50.0);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn saturation_is_graded_and_continuous() {
        // Deeper overload ⇒ higher latency (graded, never flat).
        let at = p95_latency_us(5_000.0, 5_000.0, 50.0);
        let over = p95_latency_us(10_000.0, 5_000.0, 50.0);
        let way_over = p95_latency_us(50_000.0, 5_000.0, 50.0);
        assert!(over > at && way_over > over);
        // Continuous at the soft cap.
        let just_below = p95_latency_us(5_000.0 * (RHO_SOFT_CAP - 1e-9), 5_000.0, 50.0);
        let just_above = p95_latency_us(5_000.0 * (RHO_SOFT_CAP + 1e-9), 5_000.0, 50.0);
        assert!((just_below - just_above).abs() / just_below < 1e-6);
    }

    #[test]
    fn zero_capacity_saturates() {
        assert_eq!(p95_latency_us(1.0, 0.0, 100.0), SATURATED_LATENCY_US);
    }

    #[test]
    fn knee_in_sensible_range() {
        let u = isolation_knee_utilization();
        assert!(u > 0.6 && u < 0.9, "knee utilization {u}");
    }

    #[test]
    fn qos_spec_consistent() {
        let catalog = ResourceCatalog::testbed();
        for w in WorkloadId::LATENCY_CRITICAL {
            let spec = QosSpec::derive(w, &catalog);
            assert!(spec.max_qps > 0.0);
            assert!(spec.target_us > spec.unloaded_p95_us);
            assert!(spec.met_by(spec.target_us));
            assert!(!spec.met_by(spec.target_us * 1.01));
            assert!(spec.qps_at_load(0.1) < spec.max_qps);
        }
    }

    #[test]
    fn full_load_meets_target_in_isolation() {
        // By construction (headroom < 1), 100% load in isolation sits below
        // the knee and meets the target.
        let catalog = ResourceCatalog::testbed();
        for w in WorkloadId::LATENCY_CRITICAL {
            let spec = QosSpec::derive(w, &catalog);
            let profile = w.profile();
            let t_iso = isolation_time_us(&profile, &catalog);
            let mu = capacity_qps(t_iso, catalog.all_units()[0]);
            let p95 = p95_latency_us(spec.qps_at_load(1.0), mu, t_iso);
            assert!(spec.met_by(p95), "{w}: p95 {p95} target {}", spec.target_us);
        }
    }

    #[test]
    fn memcached_is_fastest_lc() {
        let catalog = ResourceCatalog::testbed();
        let mem = QosSpec::derive(WorkloadId::Memcached, &catalog);
        for w in [WorkloadId::ImgDnn, WorkloadId::Specjbb, WorkloadId::Xapian] {
            let other = QosSpec::derive(w, &catalog);
            assert!(mem.max_qps > other.max_qps, "memcached should sustain more QPS than {w}");
        }
    }

    #[test]
    fn tail_factor_matches_p95_constant() {
        assert!((tail_factor(0.95) - P95_FACTOR).abs() < 1e-12);
        assert!(tail_factor(0.99) > tail_factor(0.95));
    }

    #[test]
    fn erlang_c_limits() {
        // Light traffic: almost never waits; saturation: always waits.
        assert!(erlang_c(10, 0.1) < 1e-9);
        assert!(erlang_c(10, 9.9) > 0.85);
        assert_eq!(erlang_c(4, 4.0), 1.0);
        // Single server: Erlang C equals utilization.
        assert!((erlang_c(1, 0.3) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_tail_between_service_floor_and_ps() {
        // At moderate utilization, M/M/c waits less than processor
        // sharing predicts but never beats the pure-service floor.
        let service = 100.0;
        let servers = 8;
        let mu = capacity_qps(service, servers);
        let lambda = 0.6 * mu;
        let ps = tail_latency_us(TailConfig::default(), lambda, mu, service, servers);
        let ec = tail_latency_us(
            TailConfig { model: TailModel::ErlangC, quantile: 0.95 },
            lambda,
            mu,
            service,
            servers,
        );
        let floor = tail_factor(0.95) * service;
        assert!(ec >= floor * 0.999, "ec {ec} below service floor {floor}");
        assert!(ec < ps, "Erlang-C {ec} should undercut PS {ps} at moderate load");
    }

    #[test]
    fn erlang_c_tail_monotone_in_load() {
        let service = 50.0;
        let servers = 4;
        let mu = capacity_qps(service, servers);
        let cfg = TailConfig { model: TailModel::ErlangC, quantile: 0.99 };
        let mut last = 0.0;
        for i in 1..19 {
            let l = mu * f64::from(i) / 20.0;
            let t = tail_latency_us(cfg, l, mu, service, servers);
            assert!(t >= last - 1e-9, "load step {i}");
            last = t;
        }
    }

    #[test]
    fn erlang_c_knee_sits_later_than_ps_knee() {
        let ps = isolation_knee_utilization();
        let ec =
            knee_utilization(TailConfig { model: TailModel::ErlangC, quantile: 0.95 }, 100.0, 10);
        assert!(ec > ps, "Erlang-C knee {ec} should exceed PS knee {ps}");
    }

    #[test]
    fn quantile_raises_targets() {
        let catalog = ResourceCatalog::testbed();
        let p = WorkloadId::Memcached.profile();
        let p95 = QosSpec::derive_with(&p, &catalog, TailConfig::default());
        let p99 = QosSpec::derive_with(
            &p,
            &catalog,
            TailConfig { model: TailModel::ProcessorSharing, quantile: 0.99 },
        );
        assert!(p99.target_us > p95.target_us);
        assert!((p99.max_qps - p95.max_qps).abs() < 1e-9, "max load is quantile-free");
    }

    #[test]
    fn sweep_shape_is_hockey_stick() {
        let catalog = ResourceCatalog::testbed();
        let profile = WorkloadId::ImgDnn.profile();
        let sweep = isolation_sweep(&profile, &catalog, 20, 0.95);
        assert_eq!(sweep.len(), 20);
        let early = sweep[1].p95_us - sweep[0].p95_us;
        let late = sweep[19].p95_us - sweep[18].p95_us;
        assert!(late > 10.0 * early);
    }
}
