//! Workload profiles for the paper's Table 3.
//!
//! The paper drives five Tailbench latency-critical (LC) workloads and six
//! PARSEC background (BG) workloads. Those binaries cannot run here, so each
//! workload is modelled by a [`WorkloadProfile`]: the constants of an
//! additive-bottleneck execution-time model (see [`crate::perf`]) chosen to
//! match the benchmark's published resource sensitivity — e.g. img-dnn is
//! core- and LLC-sensitive while masstree is memory-bandwidth-sensitive
//! (both called out explicitly in the paper's Sec. 5.2 discussion of
//! Fig. 9a).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether a job is latency-critical or throughput-oriented background.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Latency-critical: has a QoS tail-latency target.
    LatencyCritical,
    /// Throughput-oriented background (batch): maximize throughput.
    Background,
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobClass::LatencyCritical => f.write_str("LC"),
            JobClass::Background => f.write_str("BG"),
        }
    }
}

/// The eleven workloads of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadId {
    /// Image recognition (Tailbench) — LC, core- and LLC-sensitive.
    ImgDnn,
    /// Key-value store (Tailbench) — LC, memory-bandwidth-sensitive.
    Masstree,
    /// Key-value store with Mutilate load generator — LC, fast queries,
    /// small working set.
    Memcached,
    /// Java middleware (Tailbench) — LC, memory-capacity-heavy.
    Specjbb,
    /// Online search over English Wikipedia (Tailbench) — LC, disk- and
    /// cache-sensitive.
    Xapian,
    /// Option pricing (PARSEC) — BG, embarrassingly compute-parallel.
    Blackscholes,
    /// Cache-aware simulated annealing (PARSEC) — BG, memory-latency and
    /// capacity-bound.
    Canneal,
    /// Fluid dynamics (PARSEC) — BG, cores plus bandwidth.
    Fluidanimate,
    /// Frequent itemset mining (PARSEC) — BG, capacity- and cache-bound.
    Freqmine,
    /// Online stream clustering (PARSEC) — BG, LLC- and bandwidth-bound.
    Streamcluster,
    /// Swaption portfolio pricing (PARSEC) — BG, pure compute.
    Swaptions,
}

impl WorkloadId {
    /// All workloads in Table 3 order (LC first, then BG).
    pub const ALL: [WorkloadId; 11] = [
        WorkloadId::ImgDnn,
        WorkloadId::Masstree,
        WorkloadId::Memcached,
        WorkloadId::Specjbb,
        WorkloadId::Xapian,
        WorkloadId::Blackscholes,
        WorkloadId::Canneal,
        WorkloadId::Fluidanimate,
        WorkloadId::Freqmine,
        WorkloadId::Streamcluster,
        WorkloadId::Swaptions,
    ];

    /// The five latency-critical workloads.
    pub const LATENCY_CRITICAL: [WorkloadId; 5] = [
        WorkloadId::ImgDnn,
        WorkloadId::Masstree,
        WorkloadId::Memcached,
        WorkloadId::Specjbb,
        WorkloadId::Xapian,
    ];

    /// The six background workloads.
    pub const BACKGROUND: [WorkloadId; 6] = [
        WorkloadId::Blackscholes,
        WorkloadId::Canneal,
        WorkloadId::Fluidanimate,
        WorkloadId::Freqmine,
        WorkloadId::Streamcluster,
        WorkloadId::Swaptions,
    ];

    /// Lower-case benchmark name, as printed in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::ImgDnn => "img-dnn",
            WorkloadId::Masstree => "masstree",
            WorkloadId::Memcached => "memcached",
            WorkloadId::Specjbb => "specjbb",
            WorkloadId::Xapian => "xapian",
            WorkloadId::Blackscholes => "blackscholes",
            WorkloadId::Canneal => "canneal",
            WorkloadId::Fluidanimate => "fluidanimate",
            WorkloadId::Freqmine => "freqmine",
            WorkloadId::Streamcluster => "streamcluster",
            WorkloadId::Swaptions => "swaptions",
        }
    }

    /// Two-letter acronym used by the paper's Fig. 14 (BG jobs only have
    /// paper acronyms; LC jobs use a three-letter prefix).
    #[must_use]
    pub fn acronym(self) -> &'static str {
        match self {
            WorkloadId::ImgDnn => "IMG",
            WorkloadId::Masstree => "MAS",
            WorkloadId::Memcached => "MEM",
            WorkloadId::Specjbb => "JBB",
            WorkloadId::Xapian => "XAP",
            WorkloadId::Blackscholes => "BS",
            WorkloadId::Canneal => "CN",
            WorkloadId::Fluidanimate => "FA",
            WorkloadId::Freqmine => "FM",
            WorkloadId::Streamcluster => "SC",
            WorkloadId::Swaptions => "SW",
        }
    }

    /// One-line description (paper Table 3).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            WorkloadId::ImgDnn => "Image recognition",
            WorkloadId::Masstree => "Key-value store",
            WorkloadId::Memcached => "Key-value store with Mutilate load generator",
            WorkloadId::Specjbb => "Java middleware",
            WorkloadId::Xapian => "Online search (inputs: English Wikipedia)",
            WorkloadId::Blackscholes => "Option pricing with Black-Scholes PDE",
            WorkloadId::Canneal => "Simulated cache-aware annealing for chip design",
            WorkloadId::Fluidanimate => "Fluid dynamics for animation",
            WorkloadId::Freqmine => "Frequent itemset mining",
            WorkloadId::Streamcluster => "Online clustering of an input stream",
            WorkloadId::Swaptions => "Pricing of a portfolio of swaptions",
        }
    }

    /// Whether this is an LC or BG workload.
    #[must_use]
    pub fn class(self) -> JobClass {
        match self {
            WorkloadId::ImgDnn
            | WorkloadId::Masstree
            | WorkloadId::Memcached
            | WorkloadId::Specjbb
            | WorkloadId::Xapian => JobClass::LatencyCritical,
            _ => JobClass::Background,
        }
    }

    /// The modelled resource-sensitivity profile of this workload.
    #[must_use]
    pub fn profile(self) -> WorkloadProfile {
        WorkloadProfile::of(self)
    }

    /// Parses a paper-style lower-case name (e.g. `"img-dnn"`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == name)
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Constants of the additive-bottleneck execution-time model for one
/// workload (see [`crate::perf::query_time_us`] for the formula).
///
/// Per-query time components are in microseconds at reference allocation
/// (one core, zero cache hits, full bandwidth); only their ratios matter
/// for normalized results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload this profile models.
    pub id: WorkloadId,
    /// Pure CPU time per query on a single core, in µs.
    pub cpu_time_us: f64,
    /// Intra-query Amdahl parallel fraction: how much of a single query's
    /// critical path can spread across the allocated cores (throughput
    /// scaling with cores is separate — queries are independent).
    pub parallel_frac: f64,
    /// Memory-access time per query with zero LLC hits and 100% of memory
    /// bandwidth, in µs.
    pub mem_time_us: f64,
    /// Disk-access time per query with 100% of disk bandwidth, in µs.
    pub disk_time_us: f64,
    /// Asymptotic LLC hit fraction with unlimited ways.
    pub hit_max: f64,
    /// LLC ways at which the hit fraction reaches ~63% of `hit_max`
    /// (exponential saturation constant).
    pub ways_sat: f64,
    /// Fraction of total memory capacity the working set occupies; below
    /// this the job thrashes.
    pub working_set_frac: f64,
    /// Exponent of the thrashing penalty when capacity is short.
    pub thrash_exp: f64,
    /// Static memory intensity in `[0, 1]`: the fraction of machine memory
    /// bandwidth the workload demands when running flat out. Drives both the
    /// bandwidth-throttling slowdown and the (mild) un-partitioned
    /// interference term between co-located jobs.
    pub mem_intensity: f64,
    /// Fraction of machine disk bandwidth the workload demands when running
    /// flat out (0 for memory-resident workloads).
    pub disk_intensity: f64,
    /// Network time per query with 100% of network bandwidth, in µs
    /// (serving systems move requests/responses over the NIC; batch jobs
    /// barely touch it).
    pub net_time_us: f64,
    /// Fraction of machine network bandwidth the workload demands when
    /// running flat out.
    pub net_intensity: f64,
}

impl WorkloadProfile {
    /// Profile constants for one workload.
    ///
    /// These are hand-calibrated so that each benchmark's dominant
    /// sensitivity matches the behaviour the paper reports: img-dnn wants
    /// cores and LLC ways, masstree wants memory bandwidth, memcached is
    /// cheap per query with a small working set, specjbb is capacity-bound,
    /// xapian touches disk, and the PARSEC jobs range from pure compute
    /// (swaptions, blackscholes) to cache/bandwidth-bound (streamcluster,
    /// canneal).
    #[must_use]
    pub fn of(id: WorkloadId) -> Self {
        match id {
            WorkloadId::ImgDnn => Self {
                id,
                cpu_time_us: 2600.0,
                parallel_frac: 0.60,
                mem_time_us: 600.0,
                disk_time_us: 0.0,
                hit_max: 0.85,
                ways_sat: 3.5,
                working_set_frac: 0.25,
                thrash_exp: 1.2,
                mem_intensity: 0.35,
                disk_intensity: 0.0,
                net_time_us: 60.0,
                net_intensity: 0.15,
            },
            WorkloadId::Masstree => Self {
                id,
                cpu_time_us: 500.0,
                parallel_frac: 0.25,
                mem_time_us: 1400.0,
                disk_time_us: 0.0,
                hit_max: 0.45,
                ways_sat: 5.0,
                working_set_frac: 0.25,
                thrash_exp: 1.3,
                mem_intensity: 0.75,
                disk_intensity: 0.0,
                net_time_us: 50.0,
                net_intensity: 0.35,
            },
            WorkloadId::Memcached => Self {
                id,
                cpu_time_us: 90.0,
                parallel_frac: 0.10,
                mem_time_us: 110.0,
                disk_time_us: 0.0,
                hit_max: 0.60,
                ways_sat: 2.5,
                working_set_frac: 0.10,
                thrash_exp: 1.5,
                mem_intensity: 0.45,
                disk_intensity: 0.0,
                net_time_us: 25.0,
                net_intensity: 0.45,
            },
            WorkloadId::Specjbb => Self {
                id,
                cpu_time_us: 1500.0,
                parallel_frac: 0.40,
                mem_time_us: 900.0,
                disk_time_us: 0.0,
                hit_max: 0.55,
                ways_sat: 4.0,
                working_set_frac: 0.40,
                thrash_exp: 1.6,
                mem_intensity: 0.55,
                disk_intensity: 0.0,
                net_time_us: 40.0,
                net_intensity: 0.20,
            },
            WorkloadId::Xapian => Self {
                id,
                cpu_time_us: 900.0,
                parallel_frac: 0.30,
                mem_time_us: 500.0,
                disk_time_us: 450.0,
                hit_max: 0.70,
                ways_sat: 4.0,
                working_set_frac: 0.20,
                thrash_exp: 1.2,
                mem_intensity: 0.40,
                disk_intensity: 0.5,
                net_time_us: 50.0,
                net_intensity: 0.25,
            },
            WorkloadId::Blackscholes => Self {
                id,
                cpu_time_us: 4000.0,
                parallel_frac: 0.05,
                mem_time_us: 150.0,
                disk_time_us: 0.0,
                hit_max: 0.90,
                ways_sat: 1.5,
                working_set_frac: 0.05,
                thrash_exp: 1.0,
                mem_intensity: 0.10,
                disk_intensity: 0.0,
                net_time_us: 0.0,
                net_intensity: 0.0,
            },
            WorkloadId::Canneal => Self {
                id,
                cpu_time_us: 800.0,
                parallel_frac: 0.05,
                mem_time_us: 2500.0,
                disk_time_us: 0.0,
                hit_max: 0.35,
                ways_sat: 6.0,
                working_set_frac: 0.40,
                thrash_exp: 1.5,
                mem_intensity: 0.85,
                disk_intensity: 0.0,
                net_time_us: 0.0,
                net_intensity: 0.0,
            },
            WorkloadId::Fluidanimate => Self {
                id,
                cpu_time_us: 2500.0,
                parallel_frac: 0.10,
                mem_time_us: 900.0,
                disk_time_us: 0.0,
                hit_max: 0.60,
                ways_sat: 3.0,
                working_set_frac: 0.20,
                thrash_exp: 1.2,
                mem_intensity: 0.45,
                disk_intensity: 0.0,
                net_time_us: 0.0,
                net_intensity: 0.0,
            },
            WorkloadId::Freqmine => Self {
                id,
                cpu_time_us: 1800.0,
                parallel_frac: 0.05,
                mem_time_us: 1100.0,
                disk_time_us: 0.0,
                hit_max: 0.80,
                ways_sat: 4.5,
                working_set_frac: 0.40,
                thrash_exp: 1.4,
                mem_intensity: 0.50,
                disk_intensity: 0.0,
                net_time_us: 0.0,
                net_intensity: 0.0,
            },
            WorkloadId::Streamcluster => Self {
                id,
                cpu_time_us: 1200.0,
                parallel_frac: 0.10,
                mem_time_us: 1800.0,
                disk_time_us: 0.0,
                hit_max: 0.75,
                ways_sat: 4.0,
                working_set_frac: 0.15,
                thrash_exp: 1.2,
                mem_intensity: 0.70,
                disk_intensity: 0.0,
                net_time_us: 10.0,
                net_intensity: 0.05,
            },
            WorkloadId::Swaptions => Self {
                id,
                cpu_time_us: 5000.0,
                parallel_frac: 0.05,
                mem_time_us: 60.0,
                disk_time_us: 0.0,
                hit_max: 0.95,
                ways_sat: 1.0,
                working_set_frac: 0.05,
                thrash_exp: 1.0,
                mem_intensity: 0.05,
                disk_intensity: 0.0,
                net_time_us: 0.0,
                net_intensity: 0.0,
            },
        }
    }
}

/// Builder for custom [`WorkloadProfile`]s: downstream users model their
/// own services instead of the paper's eleven benchmarks. Starts from a
/// named workload's constants and overrides selectively; [`build`]
/// validates ranges.
///
/// ```
/// use clite_sim::workload::{WorkloadId, WorkloadProfileBuilder};
///
/// # fn main() -> Result<(), String> {
/// let profile = WorkloadProfileBuilder::from(WorkloadId::Memcached)
///     .cpu_time_us(150.0)
///     .mem_intensity(0.6)
///     .working_set_frac(0.2)
///     .build()?;
/// assert_eq!(profile.id, WorkloadId::Memcached);
/// # Ok(())
/// # }
/// ```
///
/// [`build`]: WorkloadProfileBuilder::build
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Starts from the named workload's calibrated constants.
    #[must_use]
    pub fn from(id: WorkloadId) -> Self {
        Self { profile: id.profile() }
    }

    /// Sets the single-core CPU time per query (µs).
    #[must_use]
    pub fn cpu_time_us(mut self, v: f64) -> Self {
        self.profile.cpu_time_us = v;
        self
    }

    /// Sets the intra-query Amdahl parallel fraction.
    #[must_use]
    pub fn parallel_frac(mut self, v: f64) -> Self {
        self.profile.parallel_frac = v;
        self
    }

    /// Sets the zero-hit full-bandwidth memory time per query (µs).
    #[must_use]
    pub fn mem_time_us(mut self, v: f64) -> Self {
        self.profile.mem_time_us = v;
        self
    }

    /// Sets the full-bandwidth disk time per query (µs).
    #[must_use]
    pub fn disk_time_us(mut self, v: f64) -> Self {
        self.profile.disk_time_us = v;
        self
    }

    /// Sets the full-bandwidth network time per query (µs).
    #[must_use]
    pub fn net_time_us(mut self, v: f64) -> Self {
        self.profile.net_time_us = v;
        self
    }

    /// Sets the asymptotic LLC hit fraction.
    #[must_use]
    pub fn hit_max(mut self, v: f64) -> Self {
        self.profile.hit_max = v;
        self
    }

    /// Sets the LLC saturation constant (ways).
    #[must_use]
    pub fn ways_sat(mut self, v: f64) -> Self {
        self.profile.ways_sat = v;
        self
    }

    /// Sets the working-set fraction of machine memory.
    #[must_use]
    pub fn working_set_frac(mut self, v: f64) -> Self {
        self.profile.working_set_frac = v;
        self
    }

    /// Sets the thrashing exponent.
    #[must_use]
    pub fn thrash_exp(mut self, v: f64) -> Self {
        self.profile.thrash_exp = v;
        self
    }

    /// Sets the memory-bandwidth demand fraction.
    #[must_use]
    pub fn mem_intensity(mut self, v: f64) -> Self {
        self.profile.mem_intensity = v;
        self
    }

    /// Sets the disk-bandwidth demand fraction.
    #[must_use]
    pub fn disk_intensity(mut self, v: f64) -> Self {
        self.profile.disk_intensity = v;
        self
    }

    /// Sets the network-bandwidth demand fraction.
    #[must_use]
    pub fn net_intensity(mut self, v: f64) -> Self {
        self.profile.net_intensity = v;
        self
    }

    /// Validates and returns the profile.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range constant: times
    /// must be non-negative with positive CPU time; fractions and
    /// intensities must be in their documented ranges.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` also rejects NaN
    pub fn build(self) -> Result<WorkloadProfile, String> {
        let p = &self.profile;
        if !(p.cpu_time_us > 0.0) {
            return Err(format!("cpu_time_us must be positive, got {}", p.cpu_time_us));
        }
        for (name, v) in [
            ("mem_time_us", p.mem_time_us),
            ("disk_time_us", p.disk_time_us),
            ("net_time_us", p.net_time_us),
        ] {
            if !(v >= 0.0) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if !(0.0..1.0).contains(&p.parallel_frac) {
            return Err(format!("parallel_frac must be in [0, 1), got {}", p.parallel_frac));
        }
        if !(0.0..1.0).contains(&p.hit_max) {
            return Err(format!("hit_max must be in [0, 1), got {}", p.hit_max));
        }
        if !(p.ways_sat > 0.0) {
            return Err(format!("ways_sat must be positive, got {}", p.ways_sat));
        }
        if !(0.0..=1.0).contains(&p.working_set_frac) {
            return Err(format!("working_set_frac must be in [0, 1], got {}", p.working_set_frac));
        }
        if !(p.thrash_exp >= 1.0) {
            return Err(format!("thrash_exp must be >= 1, got {}", p.thrash_exp));
        }
        for (name, v) in [
            ("mem_intensity", p.mem_intensity),
            ("disk_intensity", p.disk_intensity),
            ("net_intensity", p.net_intensity),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_partition_matches_table3() {
        for w in WorkloadId::LATENCY_CRITICAL {
            assert_eq!(w.class(), JobClass::LatencyCritical);
        }
        for w in WorkloadId::BACKGROUND {
            assert_eq!(w.class(), JobClass::Background);
        }
        assert_eq!(WorkloadId::ALL.len(), 11);
    }

    #[test]
    fn names_round_trip() {
        for w in WorkloadId::ALL {
            assert_eq!(WorkloadId::from_name(w.name()), Some(w));
        }
        assert_eq!(WorkloadId::from_name("nginx"), None);
    }

    #[test]
    fn profiles_are_sane() {
        for w in WorkloadId::ALL {
            let p = w.profile();
            assert_eq!(p.id, w);
            assert!(p.cpu_time_us > 0.0);
            assert!(p.mem_time_us >= 0.0);
            assert!(p.disk_time_us >= 0.0);
            assert!((0.0..1.0).contains(&p.parallel_frac) || p.parallel_frac < 1.0);
            assert!((0.0..1.0).contains(&p.hit_max));
            assert!(p.ways_sat > 0.0);
            assert!((0.0..=1.0).contains(&p.working_set_frac));
            assert!(p.thrash_exp >= 1.0);
            assert!((0.0..=1.0).contains(&p.mem_intensity));
        }
    }

    #[test]
    fn sensitivity_ordering_masstree_vs_blackscholes() {
        // masstree must be far more bandwidth-bound than blackscholes.
        let mt = WorkloadId::Masstree.profile();
        let bs = WorkloadId::Blackscholes.profile();
        assert!(mt.mem_time_us / mt.cpu_time_us > 5.0 * (bs.mem_time_us / bs.cpu_time_us));
    }

    #[test]
    fn builder_overrides_and_validates() {
        let p = WorkloadProfileBuilder::from(WorkloadId::Memcached)
            .cpu_time_us(150.0)
            .mem_intensity(0.6)
            .build()
            .unwrap();
        assert_eq!(p.cpu_time_us, 150.0);
        assert_eq!(p.mem_intensity, 0.6);
        // Unchanged fields come from memcached's calibration.
        assert_eq!(p.ways_sat, WorkloadId::Memcached.profile().ways_sat);

        assert!(WorkloadProfileBuilder::from(WorkloadId::Xapian)
            .cpu_time_us(-1.0)
            .build()
            .is_err());
        assert!(WorkloadProfileBuilder::from(WorkloadId::Xapian)
            .parallel_frac(1.5)
            .build()
            .is_err());
        assert!(WorkloadProfileBuilder::from(WorkloadId::Xapian)
            .mem_intensity(2.0)
            .build()
            .is_err());
        assert!(WorkloadProfileBuilder::from(WorkloadId::Xapian).thrash_exp(0.5).build().is_err());
    }

    #[test]
    fn acronyms_match_paper_table3() {
        assert_eq!(WorkloadId::Blackscholes.acronym(), "BS");
        assert_eq!(WorkloadId::Canneal.acronym(), "CN");
        assert_eq!(WorkloadId::Fluidanimate.acronym(), "FA");
        assert_eq!(WorkloadId::Freqmine.acronym(), "FM");
        assert_eq!(WorkloadId::Streamcluster.acronym(), "SC");
        assert_eq!(WorkloadId::Swaptions.acronym(), "SW");
    }
}
