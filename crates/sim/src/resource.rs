//! Shared server resources and their partitioning granularity (paper Table 1).
//!
//! The paper lists six partitionable shared resources of a chip multi-processor
//! server, each through a different isolation tool. The simulator keeps the
//! same set and the same unit granularities; controllers see only unit
//! counts, never the underlying tool.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Number of partitionable shared resources (paper Table 1: cores, LLC
/// ways, memory bandwidth, memory capacity, disk bandwidth, network
/// bandwidth).
pub const NUM_RESOURCES: usize = 6;

/// A partitionable shared resource on the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cores, pinned with core affinity (`taskset`).
    Cores,
    /// Last-level-cache ways, partitioned with Intel CAT.
    LlcWays,
    /// Memory bandwidth shares, limited with Intel MBA.
    MemBandwidth,
    /// Memory capacity shares, divided with Linux memory cgroups.
    MemCapacity,
    /// Disk I/O bandwidth shares, limited with Linux blkio cgroups.
    DiskBandwidth,
    /// Network bandwidth shares, limited with Linux qdisc.
    NetBandwidth,
}

impl ResourceKind {
    /// All resources, in the canonical column order used by [`crate::alloc::Partition`].
    pub const ALL: [ResourceKind; NUM_RESOURCES] = [
        ResourceKind::Cores,
        ResourceKind::LlcWays,
        ResourceKind::MemBandwidth,
        ResourceKind::MemCapacity,
        ResourceKind::DiskBandwidth,
        ResourceKind::NetBandwidth,
    ];

    /// Canonical column index of this resource.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cores => 0,
            ResourceKind::LlcWays => 1,
            ResourceKind::MemBandwidth => 2,
            ResourceKind::MemCapacity => 3,
            ResourceKind::DiskBandwidth => 4,
            ResourceKind::NetBandwidth => 5,
        }
    }

    /// Resource at a canonical column index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_RESOURCES`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Short human-readable name, as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Cores => "cores",
            ResourceKind::LlcWays => "L3 ways",
            ResourceKind::MemBandwidth => "mem b/w",
            ResourceKind::MemCapacity => "mem cap",
            ResourceKind::DiskBandwidth => "disk b/w",
            ResourceKind::NetBandwidth => "net b/w",
        }
    }

    /// The allocation method the paper's Table 1 lists for this resource.
    #[must_use]
    pub fn allocation_method(self) -> &'static str {
        match self {
            ResourceKind::Cores => "core affinity",
            ResourceKind::LlcWays => "way partitioning",
            ResourceKind::MemBandwidth => "bandwidth limiting",
            ResourceKind::MemCapacity => "capacity division",
            ResourceKind::DiskBandwidth => "I/O bandwidth limiting",
            ResourceKind::NetBandwidth => "network b/w limiting",
        }
    }

    /// The isolation tool the paper's Table 1 lists for this resource.
    #[must_use]
    pub fn isolation_tool(self) -> &'static str {
        match self {
            ResourceKind::Cores => "taskset",
            ResourceKind::LlcWays => "Intel CAT",
            ResourceKind::MemBandwidth => "Intel MBA",
            ResourceKind::MemCapacity => "Linux memory cgroups",
            ResourceKind::DiskBandwidth => "Linux blkio cgroups",
            ResourceKind::NetBandwidth => "Linux qdisc",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unit counts for every partitionable resource.
///
/// The default [`ResourceCatalog::testbed`] mirrors the paper's Xeon Silver
/// 4114 node: 10 physical cores, an 11-way set-associative L3, and 10%-step
/// shares for memory bandwidth, memory capacity, and disk bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceCatalog {
    units: [u32; NUM_RESOURCES],
}

impl ResourceCatalog {
    /// Catalog with explicit unit counts, in [`ResourceKind::ALL`] order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyJobs`] if any resource has zero units
    /// (a resource that cannot host even a single job).
    pub fn new(units: [u32; NUM_RESOURCES]) -> Result<Self, SimError> {
        for (i, &u) in units.iter().enumerate() {
            if u == 0 {
                return Err(SimError::TooManyJobs {
                    resource: ResourceKind::from_index(i),
                    units: 0,
                    jobs: 1,
                });
            }
        }
        Ok(Self { units })
    }

    /// The paper's testbed granularity (Table 1 / Table 2): 10 cores,
    /// 11 LLC ways, 10 memory-bandwidth units, 10 memory-capacity units,
    /// 10 disk-bandwidth units.
    #[must_use]
    pub fn testbed() -> Self {
        Self { units: [10, 11, 10, 10, 10, 10] }
    }

    /// A coarser catalog used where exhaustive (ORACLE) enumeration must be
    /// cheap: 6 cores, 6 ways, 5 bandwidth/capacity units.
    #[must_use]
    pub fn coarse() -> Self {
        Self { units: [6, 6, 5, 5, 5, 5] }
    }

    /// Unit count for one resource.
    #[must_use]
    pub fn units(&self, resource: ResourceKind) -> u32 {
        self.units[resource.index()]
    }

    /// Unit counts in canonical order.
    #[must_use]
    pub fn all_units(&self) -> [u32; NUM_RESOURCES] {
        self.units
    }

    /// Maximum units a single job can hold for `resource` when `jobs` jobs
    /// are co-located: every other job keeps its mandatory single unit
    /// (paper Eq. 5).
    #[must_use]
    pub fn max_for_job(&self, resource: ResourceKind, jobs: usize) -> u32 {
        let total = self.units(resource);
        total.saturating_sub(jobs as u32).saturating_add(1)
    }

    /// Whether `jobs` jobs can feasibly share every resource (each needs at
    /// least one unit of each).
    #[must_use]
    pub fn supports_jobs(&self, jobs: usize) -> bool {
        self.units.iter().all(|&u| u as usize >= jobs)
    }

    /// Total number of feasible partition configurations for `jobs`
    /// co-located jobs, following the paper's Sec. 2 formula
    /// `prod_r C(N_units(r) - 1, N_jobs - 1)`.
    ///
    /// Saturates at `u128::MAX` for absurdly large spaces.
    #[must_use]
    pub fn total_configurations(&self, jobs: usize) -> u128 {
        if jobs == 0 {
            return 0;
        }
        let mut total: u128 = 1;
        for &u in &self.units {
            let n = u128::from(u) - 1;
            let k = jobs as u128 - 1;
            total = total.saturating_mul(binomial(n, k));
        }
        total
    }

    /// Number of search dimensions for `jobs` jobs: `N_res × N_jobs`
    /// (paper Sec. 2).
    #[must_use]
    pub fn dimensions(&self, jobs: usize) -> usize {
        NUM_RESOURCES * jobs
    }
}

impl Default for ResourceCatalog {
    fn default() -> Self {
        Self::testbed()
    }
}

/// Saturating binomial coefficient `C(n, k)`.
fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_round_trips() {
        for (i, r) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(ResourceKind::from_index(i), *r);
        }
    }

    #[test]
    fn testbed_matches_paper_table() {
        let c = ResourceCatalog::testbed();
        assert_eq!(c.units(ResourceKind::Cores), 10);
        assert_eq!(c.units(ResourceKind::LlcWays), 11);
        assert_eq!(c.units(ResourceKind::MemBandwidth), 10);
        assert_eq!(c.units(ResourceKind::MemCapacity), 10);
        assert_eq!(c.units(ResourceKind::DiskBandwidth), 10);
    }

    #[test]
    fn zero_unit_catalog_rejected() {
        let err = ResourceCatalog::new([0, 11, 10, 10, 10, 10]).unwrap_err();
        assert!(matches!(err, SimError::TooManyJobs { .. }));
    }

    #[test]
    fn paper_configuration_count_example() {
        // Paper Sec. 2: four jobs sharing three resources with 10 units each
        // gives 592,704 configurations. C(9,3)^3 = 84^3 = 592,704.
        let catalog = ResourceCatalog::new([10, 10, 10, 1, 1, 1]).unwrap();
        // The two 1-unit resources cannot host 4 jobs, but the combinatorial
        // formula itself is what the paper quotes; restrict to 3 resources by
        // checking the partial product.
        let per_resource = binomial(9, 3);
        assert_eq!(per_resource, 84);
        assert_eq!(per_resource.pow(3), 592_704);
        // And the full catalog formula multiplies per-resource counts.
        assert_eq!(catalog.total_configurations(1), 1);
    }

    #[test]
    fn max_for_job_leaves_one_unit_each() {
        let c = ResourceCatalog::testbed();
        assert_eq!(c.max_for_job(ResourceKind::Cores, 4), 7);
        assert_eq!(c.max_for_job(ResourceKind::LlcWays, 4), 8);
        assert_eq!(c.max_for_job(ResourceKind::Cores, 1), 10);
    }

    #[test]
    fn supports_jobs_bounds() {
        let c = ResourceCatalog::testbed();
        assert!(c.supports_jobs(1));
        assert!(c.supports_jobs(10));
        assert!(!c.supports_jobs(11));
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn dimensions_matches_paper() {
        // Paper Sec. 2: 3 resources x 4 jobs => 12-dimensional space; with
        // all six resources it is 24-dimensional.
        let c = ResourceCatalog::testbed();
        assert_eq!(c.dimensions(4), 24);
    }

    #[test]
    fn display_and_tools_nonempty() {
        for r in ResourceKind::ALL {
            assert!(!r.to_string().is_empty());
            assert!(!r.isolation_tool().is_empty());
            assert!(!r.allocation_method().is_empty());
        }
    }
}
