use std::fmt;

use crate::resource::ResourceKind;

/// Error type for simulator construction and partition manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A partition row count did not match the number of co-located jobs.
    JobCountMismatch {
        /// Number of jobs the catalog/server expects.
        expected: usize,
        /// Number of rows actually supplied.
        actual: usize,
    },
    /// A job was allocated fewer than one unit of a resource.
    BelowMinimumAllocation {
        /// Index of the offending job.
        job: usize,
        /// Resource with the invalid allocation.
        resource: ResourceKind,
    },
    /// Per-resource allocations did not sum to the catalog's unit count.
    AllocationSumMismatch {
        /// Resource whose column does not sum correctly.
        resource: ResourceKind,
        /// Expected column sum (the catalog's unit count).
        expected: u32,
        /// Actual column sum.
        actual: u32,
    },
    /// The catalog cannot host this many jobs (fewer units than jobs).
    TooManyJobs {
        /// Resource that cannot give every job one unit.
        resource: ResourceKind,
        /// Units available for that resource.
        units: u32,
        /// Number of jobs requested.
        jobs: usize,
    },
    /// A unit transfer would violate the feasibility constraints.
    InvalidTransfer {
        /// Resource being transferred.
        resource: ResourceKind,
        /// Donor job index.
        from: usize,
        /// Recipient job index.
        to: usize,
    },
    /// A job index was out of range.
    JobOutOfRange {
        /// The offending index.
        job: usize,
        /// Number of jobs present.
        jobs: usize,
    },
    /// A partition was built against a different resource catalog than the
    /// machine it is being applied to.
    CatalogMismatch,
    /// A server was constructed with no jobs.
    NoJobs,
    /// A load fraction outside `(0, 1]` was supplied for an LC job.
    InvalidLoad {
        /// The offending load fraction.
        load: f64,
    },
    /// An observation window elapsed but its counters were unreadable
    /// (transient measurement fault; the window's time was still spent).
    WindowDropped {
        /// Index of the faulted window on this testbed.
        window: u64,
    },
    /// An observation window stalled past its deadline before the counters
    /// could be read (transient; extra windows of time were consumed).
    WindowTimeout {
        /// Index of the faulted window on this testbed.
        window: u64,
        /// Windows of time lost waiting for the deadline.
        lost_windows: u64,
    },
    /// The isolation layer transiently failed to apply a partition
    /// (retrying the enforcement usually succeeds).
    EnforceFault {
        /// Index of the window at which enforcement failed.
        window: u64,
    },
    /// The node died; every subsequent enforcement and observation fails
    /// (permanent — the machine must be evicted, not retried).
    NodeCrashed {
        /// Index of the window at which the node crashed.
        window: u64,
    },
}

impl SimError {
    /// Whether this error is a *transient* measurement/enforcement fault:
    /// the window's time was lost but retrying the same operation is
    /// meaningful. Contract violations (mismatched partitions, bad loads)
    /// and permanent failures ([`SimError::NodeCrashed`]) are not
    /// transient.
    #[must_use]
    pub fn is_transient_fault(&self) -> bool {
        matches!(
            self,
            SimError::WindowDropped { .. }
                | SimError::WindowTimeout { .. }
                | SimError::EnforceFault { .. }
        )
    }

    /// Whether this error means the whole node is gone for good.
    #[must_use]
    pub fn is_node_crash(&self) -> bool {
        matches!(self, SimError::NodeCrashed { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::JobCountMismatch { expected, actual } => {
                write!(f, "partition has {actual} rows but {expected} jobs are co-located")
            }
            SimError::BelowMinimumAllocation { job, resource } => {
                write!(f, "job {job} allocated zero units of {resource}")
            }
            SimError::AllocationSumMismatch { resource, expected, actual } => {
                write!(f, "{resource} allocations sum to {actual}, catalog has {expected} units")
            }
            SimError::TooManyJobs { resource, units, jobs } => {
                write!(f, "{resource} has {units} units, cannot give 1 to each of {jobs} jobs")
            }
            SimError::InvalidTransfer { resource, from, to } => {
                write!(f, "invalid {resource} transfer from job {from} to job {to}")
            }
            SimError::JobOutOfRange { job, jobs } => {
                write!(f, "job index {job} out of range for {jobs} jobs")
            }
            SimError::CatalogMismatch => {
                write!(f, "partition was built against a different resource catalog")
            }
            SimError::NoJobs => write!(f, "server requires at least one job"),
            SimError::InvalidLoad { load } => {
                write!(f, "load fraction {load} outside (0, 1]")
            }
            SimError::WindowDropped { window } => {
                write!(f, "window {window} dropped: counters unreadable")
            }
            SimError::WindowTimeout { window, lost_windows } => {
                write!(f, "window {window} stalled past its deadline ({lost_windows} windows lost)")
            }
            SimError::EnforceFault { window } => {
                write!(f, "isolation layer transiently failed to enforce at window {window}")
            }
            SimError::NodeCrashed { window } => {
                write!(f, "node crashed at window {window}")
            }
        }
    }
}

impl std::error::Error for SimError {}
