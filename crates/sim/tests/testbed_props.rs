//! Property tests for the [`Testbed`] abstraction: any partition applied
//! through `Testbed::enforce` keeps the feasibility invariants the search
//! relies on, and malformed partitions are rejected with typed errors
//! instead of corrupting server state. Run against both backends
//! ([`Server`] and [`MemoizedTestbed`]) so cache replay can never bypass
//! validation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use clite_sim::testbed::{MemoizedTestbed, Testbed};

fn arb_catalog() -> impl Strategy<Value = ResourceCatalog> {
    (4u32..=12, 4u32..=12, 4u32..=12, 4u32..=12, 4u32..=12, 4u32..=12)
        .prop_map(|(a, b, c, d, e, f)| ResourceCatalog::new([a, b, c, d, e, f]).unwrap())
}

/// An alternating LC/BG mix of `jobs` co-located jobs.
fn specs(jobs: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            if i % 2 == 0 {
                JobSpec::latency_critical(WorkloadId::LATENCY_CRITICAL[i % 5], 0.3)
            } else {
                JobSpec::background(WorkloadId::BACKGROUND[i % 6])
            }
        })
        .collect()
}

/// `catalog` with one extra unit of one resource — never equal to it.
fn bumped(catalog: &ResourceCatalog, which: usize) -> ResourceCatalog {
    let mut units = [0u32; ResourceKind::ALL.len()];
    for (i, r) in ResourceKind::ALL.into_iter().enumerate() {
        units[i] = catalog.units(r);
    }
    units[which % units.len()] += 1;
    ResourceCatalog::new(units).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After `Testbed::enforce`, the committed partition gives every job
    /// at least one unit of every resource and allocates each resource
    /// exactly (no units lost, none invented).
    #[test]
    fn enforce_commits_feasible_partitions(
        catalog in arb_catalog(),
        jobs in 1usize..=4,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = Server::new(catalog, specs(jobs), seed).unwrap();
        let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
        prop_assert!(Testbed::enforce(&mut server, &p).is_ok());
        let committed = server.current_partition();
        for r in ResourceKind::ALL {
            let sum: u32 = (0..jobs).map(|j| committed.units(j, r)).sum();
            prop_assert_eq!(sum, catalog.units(r), "resource {:?} must be fully allocated", r);
            for j in 0..jobs {
                prop_assert!(committed.units(j, r) >= 1, "job {j} starved of {:?}", r);
            }
        }
    }

    /// A partition with the wrong number of rows is rejected with
    /// `JobCountMismatch` and leaves the committed partition untouched.
    #[test]
    fn enforce_rejects_wrong_row_count(
        catalog in arb_catalog(),
        jobs in 1usize..=3,
        extra in 1usize..=2,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = Server::new(catalog, specs(jobs), seed).unwrap();
        let before = server.current_partition().clone();
        // Built against the roomy testbed catalog so the extra rows always
        // fit; row count is validated before catalog identity.
        let p = Partition::random(&ResourceCatalog::testbed(), jobs + extra, &mut rng).unwrap();
        prop_assert!(matches!(
            Testbed::enforce(&mut server, &p),
            Err(SimError::JobCountMismatch { expected, actual })
                if expected == jobs && actual == jobs + extra
        ));
        prop_assert_eq!(server.current_partition(), &before);
    }

    /// A partition built against a different catalog is rejected with
    /// `CatalogMismatch` even when the row count matches.
    #[test]
    fn enforce_rejects_foreign_catalog(
        catalog in arb_catalog(),
        jobs in 1usize..=3,
        which in 0usize..6,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = Server::new(catalog, specs(jobs), seed).unwrap();
        let foreign = bumped(&catalog, which);
        let p = Partition::random(&foreign, jobs, &mut rng).unwrap();
        prop_assert!(matches!(
            Testbed::enforce(&mut server, &p),
            Err(SimError::CatalogMismatch)
        ));
    }

    /// The memoized backend enforces the same invariants as the raw
    /// server — a cache can replay observations, never validation.
    #[test]
    fn memoized_backend_validates_like_server(
        catalog in arb_catalog(),
        jobs in 1usize..=3,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut memo = MemoizedTestbed::new(Server::new(catalog, specs(jobs), seed).unwrap());
        let good = Partition::random(&catalog, jobs, &mut rng).unwrap();
        prop_assert!(memo.enforce(&good).is_ok());
        let bad_rows = Partition::random(&catalog, jobs + 1, &mut rng).unwrap();
        prop_assert!(matches!(
            memo.enforce(&bad_rows),
            Err(SimError::JobCountMismatch { .. })
        ));
        let foreign = Partition::random(&bumped(&catalog, jobs), jobs, &mut rng).unwrap();
        prop_assert!(matches!(memo.enforce(&foreign), Err(SimError::CatalogMismatch)));
    }

    /// `Testbed::observe` advances the sample counter and simulated time
    /// identically on both backends for a first (cache-miss) observation.
    #[test]
    fn observe_accounting_matches_across_backends(
        catalog in arb_catalog(),
        jobs in 1usize..=3,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
        let mut server = Server::new(catalog, specs(jobs), seed).unwrap();
        let mut memo = MemoizedTestbed::new(Server::new(catalog, specs(jobs), seed).unwrap());
        let direct = Testbed::observe(&mut server, &p);
        let through_cache = memo.observe(&p);
        prop_assert_eq!(server.samples_observed(), 1);
        prop_assert_eq!(memo.samples_observed(), 1);
        prop_assert!((server.time_s() - memo.time_s()).abs() < 1e-9);
        prop_assert!((direct.time_s - through_cache.time_s).abs() < 1e-9);
    }
}
