//! Shared deterministic worker pool for the CLITE search stack.
//!
//! Every parallel site in the workspace used to open its own
//! `std::thread::scope` fan-out: the GP hyper-grid scan, the acquisition
//! multi-start climbs, and threaded cluster admission each spawned fresh OS
//! threads per call — and the fleet service nested them (per-node searches
//! inside per-node admission probes), oversubscribing shared hosts. This
//! crate replaces all of those with one fixed-size, lazily-initialized pool
//! in the idiom of the-block's `node/src/parallel.rs`: work is split into
//! **non-overlapping, index-keyed partitions** ("slots"), executed by
//! whichever threads are free, and reduced in slot-index order so the
//! result is a pure function of the partitioning — never of the pool size,
//! scheduling order, or physical core count.
//!
//! # Determinism contract
//!
//! [`WorkerPool::dispatch`] runs `f(slot)` exactly once for every
//! `slot in 0..slots`. Which *thread* runs a slot is unspecified; *what* a
//! slot computes must depend only on its index. [`map_indexed`] builds on
//! this: items are striped across slots (`slot`, `slot + W`, `slot + 2W`,
//! …) and results are merged back in item order, so for a pure per-item
//! function the output is byte-identical at any worker count — including
//! the fully-inline 1-slot path, which never touches the pool at all.
//!
//! # Sizing
//!
//! [`WorkerPool::global`] sizes itself from the `CLITE_PAR_THREADS`
//! environment variable, falling back to `std::thread::available_parallelism`.
//! A pool of size `N` spawns `N - 1` background workers: the dispatching
//! caller always participates as the `N`-th executor, which keeps
//! `dispatch` deadlock-free under nesting (a pool worker that dispatches a
//! sub-job drains that job's slots itself if no peer is free) and means a
//! size-1 pool runs everything inline with zero synchronization.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Environment variable overriding the [`WorkerPool::global`] executor
/// count. Values `< 1` or non-numeric fall back to the detected core
/// count.
pub const THREADS_ENV: &str = "CLITE_PAR_THREADS";

type Panic = Box<dyn Any + Send + 'static>;

/// Type-erased pointer to a `dispatch` slot body.
///
/// The pointee lives on the dispatching caller's stack. Workers only
/// dereference it for slot claims `< slots`, and `dispatch` does not
/// return until every such claim has finished, so the pointer is always
/// dereferenced within the closure's lifetime.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&` calls from many threads are
// fine) and the `dispatch` barrier above bounds its lifetime.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One in-flight `dispatch` call: a slot counter workers race on plus a
/// completion latch the caller blocks on.
struct Job {
    task: TaskPtr,
    slots: usize,
    /// Next unclaimed slot; claims at or past `slots` fail.
    next: AtomicUsize,
    done: Mutex<JobDone>,
    done_cv: Condvar,
}

struct JobDone {
    /// Slots not yet finished (claimed-and-running or still unclaimed).
    remaining: usize,
    /// First stowed slot panic; re-raised on the caller once all slots
    /// have finished.
    panic: Option<Panic>,
}

impl Job {
    fn new(task: *const (dyn Fn(usize) + Sync), slots: usize) -> Self {
        Self {
            task: TaskPtr(task),
            slots,
            next: AtomicUsize::new(0),
            done: Mutex::new(JobDone { remaining: slots, panic: None }),
            done_cv: Condvar::new(),
        }
    }

    /// Claims the next unstarted slot, if any.
    fn claim(&self) -> Option<usize> {
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        (slot < self.slots).then_some(slot)
    }

    /// Runs a claimed slot, stowing (not propagating) any panic so the
    /// remaining-slot accounting stays consistent, then books completion.
    fn run_slot(&self, slot: usize) {
        // SAFETY: `slot` was claimed (< slots), so per the `TaskPtr`
        // contract the pointee is still alive.
        let task = unsafe { &*self.task.0 };
        let result = catch_unwind(AssertUnwindSafe(|| task(slot)));
        let mut done = self.done.lock().expect("job lock poisoned");
        if let Err(payload) = result {
            done.panic.get_or_insert(payload);
        }
        done.remaining -= 1;
        if done.remaining == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// Cumulative pool counters, for utilization gauges and the
/// no-oversubscription tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `dispatch` calls issued (including fully-inline ones).
    pub jobs: u64,
    /// Slots executed by background pool workers.
    pub worker_tasks: u64,
    /// Slots executed inline by dispatching callers.
    pub caller_tasks: u64,
    /// High-water mark of *concurrently busy* background workers. By
    /// construction this never exceeds [`WorkerPool::workers`], however
    /// many dispatches overlap or nest — that bound is exactly the
    /// no-thread-explosion guarantee the fleet path relies on.
    pub max_busy_workers: usize,
}

#[derive(Default)]
struct StatCells {
    jobs: AtomicU64,
    worker_tasks: AtomicU64,
    caller_tasks: AtomicU64,
    busy_workers: AtomicUsize,
    max_busy_workers: AtomicUsize,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    stats: StatCells,
}

/// A fixed-size pool of `size - 1` background workers plus the caller.
///
/// Use [`WorkerPool::global`] in production paths so every search in the
/// process shares one set of threads; construct local pools only in tests
/// (results never depend on which pool runs a dispatch).
pub struct WorkerPool {
    shared: Arc<Shared>,
    size: usize,
    workers: Vec<thread::JoinHandle<()>>,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// A pool with `size` executors: `size - 1` spawned workers plus the
    /// dispatching caller. `size` is clamped to at least 1; a size-1 pool
    /// spawns nothing and runs every dispatch inline.
    #[must_use]
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: StatCells::default(),
        });
        let workers = (0..size - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("clite-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, size, workers }
    }

    /// The process-wide shared pool, created on first use and sized by
    /// [`THREADS_ENV`] / `available_parallelism`.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| WorkerPool::new(global_size()))
    }

    /// Executor count (spawned workers + the caller).
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of spawned background worker threads (`size - 1`).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the cumulative pool counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared.stats;
        PoolStats {
            jobs: s.jobs.load(Ordering::Relaxed),
            worker_tasks: s.worker_tasks.load(Ordering::Relaxed),
            caller_tasks: s.caller_tasks.load(Ordering::Relaxed),
            max_busy_workers: s.max_busy_workers.load(Ordering::Relaxed),
        }
    }

    /// Runs `f(slot)` exactly once for every `slot in 0..slots`, spreading
    /// slots over idle pool workers; the caller executes unclaimed slots
    /// itself and returns only when all slots have finished.
    ///
    /// Slot bodies must derive their work purely from the slot index (the
    /// determinism contract). Panics in any slot are re-raised on the
    /// caller after the whole job completes. Nested dispatch from inside a
    /// slot is supported and cannot deadlock: the nested caller drains its
    /// own job's slots whenever no worker is free.
    pub fn dispatch(&self, slots: usize, f: impl Fn(usize) + Sync) {
        self.dispatch_dyn(slots, &f);
    }

    fn dispatch_dyn(&self, slots: usize, task: &(dyn Fn(usize) + Sync)) {
        if slots == 0 {
            return;
        }
        let stats = &self.shared.stats;
        stats.jobs.fetch_add(1, Ordering::Relaxed);
        if slots == 1 || self.workers.is_empty() {
            // Nothing worth handing off: run inline, panics propagate
            // directly (no other slot is in flight).
            stats.caller_tasks.fetch_add(slots as u64, Ordering::Relaxed);
            for slot in 0..slots {
                task(slot);
            }
            return;
        }

        // SAFETY: lifetime erasure only — `dispatch_dyn` blocks until every
        // claimed slot has finished, so no worker dereferences the pointer
        // past the borrow it was created from (see `TaskPtr`).
        let task: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
        let job = Arc::new(Job::new(task, slots));
        self.shared.queue.lock().expect("pool queue poisoned").push_back(Arc::clone(&job));
        self.shared.work_cv.notify_all();

        // Participate: the caller is the pool's size-th executor.
        while let Some(slot) = job.claim() {
            stats.caller_tasks.fetch_add(1, Ordering::Relaxed);
            job.run_slot(slot);
        }

        let mut done = job.done.lock().expect("job lock poisoned");
        while done.remaining > 0 {
            done = job.done_cv.wait(done).expect("job lock poisoned");
        }
        if let Some(payload) = done.panic.take() {
            drop(done);
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Background worker: block for a queued job, then drain slots from it
/// (and any jobs queued behind it) until the queue is empty again.
fn worker_loop(shared: &Shared) {
    loop {
        let claimed = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let mut found = None;
                while let Some(front) = queue.front() {
                    if let Some(slot) = front.claim() {
                        found = Some((Arc::clone(front), slot));
                        break;
                    }
                    // Fully claimed: retire it from the queue. Its last
                    // slots may still be running; the caller's latch, not
                    // the queue, tracks completion.
                    queue.pop_front();
                }
                if let Some(found) = found {
                    break found;
                }
                queue = shared.work_cv.wait(queue).expect("pool queue poisoned");
            }
        };

        let stats = &shared.stats;
        let busy = stats.busy_workers.fetch_add(1, Ordering::SeqCst) + 1;
        stats.max_busy_workers.fetch_max(busy, Ordering::SeqCst);
        let (job, mut slot) = claimed;
        loop {
            stats.worker_tasks.fetch_add(1, Ordering::Relaxed);
            job.run_slot(slot);
            // Keep draining the same job without touching the queue lock.
            match job.claim() {
                Some(next) => slot = next,
                None => break,
            }
        }
        drop(job);
        stats.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Global pool size: `CLITE_PAR_THREADS` if set to a positive integer,
/// else the detected parallelism, else 1.
fn global_size() -> usize {
    let detected = || thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => detected(),
        },
        Err(_) => detected(),
    }
}

/// Maps `f` over `items` with up to `slots` partitions, returning results
/// in item order.
///
/// Items are striped: slot `w` processes items `w, w + W, w + 2W, …`
/// where `W = slots.clamp(1, items.len())`. Each slot gets its own scratch
/// from `init`, created on the executing thread (so `S` needs no `Send`
/// bound) and reused across that slot's items — preserving the
/// per-worker-cache semantics of the `std::thread::scope` fan-outs this
/// replaces. With `W == 1` the whole map runs inline on the caller with a
/// single scratch and zero pool involvement, byte-identical to a serial
/// loop by construction; for `W > 1` the outputs are merged back in item
/// order, so a pure `f` yields the same `Vec` at every slot count.
pub fn map_indexed<T, R, S>(
    pool: &WorkerPool,
    slots: usize,
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let width = slots.max(1).min(items.len());
    if width <= 1 {
        let mut scratch = init();
        return items.iter().enumerate().map(|(i, item)| f(&mut scratch, i, item)).collect();
    }

    let per_slot: Vec<Mutex<Vec<R>>> = (0..width).map(|_| Mutex::new(Vec::new())).collect();
    pool.dispatch(width, |slot| {
        let mut scratch = init();
        let mut out = Vec::with_capacity(items.len().div_ceil(width));
        let mut i = slot;
        while i < items.len() {
            out.push(f(&mut scratch, i, &items[i]));
            i += width;
        }
        *per_slot[slot].lock().expect("slot result lock poisoned") = out;
    });

    // Inverse stripe: item i was produced by slot i % W at position i / W.
    let mut streams: Vec<_> = per_slot
        .into_iter()
        .map(|m| m.into_inner().expect("slot result lock poisoned").into_iter())
        .collect();
    let mut merged = Vec::with_capacity(items.len());
    for i in 0..items.len() {
        merged.push(streams[i % width].next().expect("stripe must cover every item"));
    }
    merged
}

/// Shared raw pointer into a mutable slice handed out chunk-wise.
struct SlicePtr<T>(*mut T);

impl<T> SlicePtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: `for_each_chunk_mut` hands each chunk index to exactly one slot
// (striping) and `dispatch` blocks until all slots finish, so no two
// threads alias a chunk and no access outlives the borrow.
unsafe impl<T: Send> Send for SlicePtr<T> {}
unsafe impl<T: Send> Sync for SlicePtr<T> {}

/// Runs `f(chunk_index, chunk)` over `data` split into consecutive
/// `chunk_len`-sized chunks (last one may be shorter), with chunk indices
/// striped over up to `slots` pool partitions.
///
/// This is the write-side counterpart of [`map_indexed`]: chunks are
/// non-overlapping by construction, so slots can fill disjoint regions of
/// one output buffer in place (Gram tiles, multi-RHS solve blocks) with no
/// locking and no per-slot result merge. Like every pool entry point, the
/// set of chunks each `f` sees depends only on indices — never on the
/// worker count — and `slots <= 1` runs inline on the caller.
///
/// # Panics
///
/// Panics if `chunk_len` is zero while `data` is non-empty.
pub fn for_each_chunk_mut<T: Send>(
    pool: &WorkerPool,
    slots: usize,
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks = data.len().div_ceil(chunk_len);
    let width = slots.max(1).min(chunks);
    if width <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    let len = data.len();
    let base = SlicePtr(data.as_mut_ptr());
    pool.dispatch(width, |slot| {
        let mut i = slot;
        while i < chunks {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk `i` belongs to this slot alone (stripe), the
            // [start, end) ranges of distinct chunks are disjoint, and the
            // dispatch barrier keeps the pointee borrow alive (`SlicePtr`).
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(i, chunk);
            i += width;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn dispatch_runs_every_slot_exactly_once() {
        let pool = WorkerPool::new(4);
        for slots in [0usize, 1, 2, 3, 7, 64] {
            let hits: Vec<AtomicU32> = (0..slots).map(|_| AtomicU32::new(0)).collect();
            pool.dispatch(slots, |slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
            for (slot, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "slot {slot} of {slots}");
            }
        }
    }

    #[test]
    fn size_one_pool_is_fully_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let caller = thread::current().id();
        pool.dispatch(5, |_| assert_eq!(thread::current().id(), caller));
        let stats = pool.stats();
        assert_eq!(stats.caller_tasks, 5);
        assert_eq!(stats.worker_tasks, 0);
        assert_eq!(stats.max_busy_workers, 0);
    }

    #[test]
    fn map_indexed_matches_serial_at_any_width() {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..23).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for slots in [0usize, 1, 2, 4, 8, 23, 100] {
            let got = map_indexed(&pool, slots, &items, || (), |(), _, x| x * x + 1);
            assert_eq!(got, serial, "slots={slots}");
        }
    }

    #[test]
    fn scratch_is_per_slot_and_reused_within_a_slot() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..40).collect();
        let width = 4;
        // Scratch counts how many items this slot has already seen; with
        // striping, item i is the (i / W)-th item of slot i % W.
        let got = map_indexed(
            &pool,
            width,
            &items,
            || 0usize,
            |seen, i, _| {
                let order = *seen;
                *seen += 1;
                (i % width, order)
            },
        );
        for (i, &(slot, order)) in got.iter().enumerate() {
            assert_eq!(slot, i % width);
            assert_eq!(order, i / width);
        }
    }

    #[test]
    fn chunked_writes_cover_the_buffer_once() {
        let pool = WorkerPool::new(4);
        for (len, chunk_len) in [(1usize, 3), (7, 3), (12, 4), (100, 7)] {
            let mut data = vec![0u32; len];
            for slots in [0usize, 1, 2, 4, 16] {
                data.fill(0);
                for_each_chunk_mut(&pool, slots, &mut data, chunk_len, |idx, chunk| {
                    assert!(chunk.len() <= chunk_len);
                    for (off, v) in chunk.iter_mut().enumerate() {
                        *v += (idx * chunk_len + off + 1) as u32;
                    }
                });
                for (i, &v) in data.iter().enumerate() {
                    assert_eq!(v, (i + 1) as u32, "len={len} chunk={chunk_len} slots={slots}");
                }
            }
        }
    }

    #[test]
    fn nested_dispatch_completes() {
        let pool = WorkerPool::new(2);
        let total = AtomicU32::new(0);
        pool.dispatch(4, |_| {
            pool.dispatch(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
        assert!(pool.stats().max_busy_workers <= pool.workers());
    }

    #[test]
    fn slot_panic_propagates_after_job_completes() {
        let pool = WorkerPool::new(3);
        let finished = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(6, |slot| {
                if slot == 2 {
                    panic!("slot 2 exploded");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Every non-panicking slot still ran: accounting stayed intact.
        assert_eq!(finished.load(Ordering::Relaxed), 5);
        // The pool is still usable afterwards.
        pool.dispatch(3, |_| ());
    }

    #[test]
    fn global_pool_initializes_once() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.size() >= 1);
    }
}
