//! The substrate's whole contract in two properties: (1) a partitioned
//! map-reduce over any worker count produces *byte-identical* results —
//! including a serial left-fold over the merged outputs, the shape every
//! consumer's reduction takes — and (2) the slot striping is a true
//! partition of the input: every item is visited exactly once, no
//! overlaps, no gaps, regardless of slot count or input size.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use clite_par::{for_each_chunk_mut, map_indexed, WorkerPool};

/// A deterministic pseudo-random work set (xorshift64*): enough FP
/// structure that any reordering of the reduction would flip result bits.
fn work_set(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            // Map to (0, 1]: keep values well-conditioned but non-dyadic.
            (bits >> 11) as f64 / f64::from(1u32 << 21) / f64::from(1u32 << 21) / 2048.0 + 1e-9
        })
        .collect()
}

/// A per-item kernel with a non-trivial dependency chain, so per-item
/// results are sensitive to everything about how the item was computed.
fn kernel(i: usize, x: f64) -> f64 {
    let mut acc = x;
    for k in 0..8 {
        acc = acc.mul_add(1.0 / (i + k + 1) as f64, (x * (k + 1) as f64).sin());
    }
    acc
}

#[test]
fn partitioned_reduction_is_byte_identical_at_1_2_4_8_workers() {
    let items = work_set(257, 0xC11F_E0D5);

    // Serial baseline: plain iterator map plus a left-fold sum.
    let serial: Vec<f64> = items.iter().enumerate().map(|(i, &x)| kernel(i, x)).collect();
    let serial_sum = serial.iter().fold(0.0f64, |a, &b| a + b);

    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        for slots in [1usize, 2, 3, 4, 8, 16] {
            let mapped = map_indexed(&pool, slots, &items, || (), |(), i, &x| kernel(i, x));
            for (i, (s, p)) in serial.iter().zip(&mapped).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    p.to_bits(),
                    "item {i} diverged at {workers} workers / {slots} slots"
                );
            }
            let sum = mapped.iter().fold(0.0f64, |a, &b| a + b);
            assert_eq!(
                serial_sum.to_bits(),
                sum.to_bits(),
                "reduction diverged at {workers} workers / {slots} slots"
            );
        }
    }
}

#[test]
fn chunked_mutation_is_byte_identical_at_1_2_4_8_workers() {
    let baseline = {
        let mut data = work_set(513, 0x5EED);
        for (c, chunk) in data.chunks_mut(64).enumerate() {
            for v in chunk.iter_mut() {
                *v = kernel(c, *v);
            }
        }
        data
    };

    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        for slots in [1usize, 2, 4, 8] {
            let mut data = work_set(513, 0x5EED);
            for_each_chunk_mut(&pool, slots, &mut data, 64, |c, chunk| {
                for v in chunk.iter_mut() {
                    *v = kernel(c, *v);
                }
            });
            for (i, (b, p)) in baseline.iter().zip(&data).enumerate() {
                assert_eq!(
                    b.to_bits(),
                    p.to_bits(),
                    "element {i} diverged at {workers} workers / {slots} slots"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slot striping is a partition: `map_indexed` hands every input index
    /// to exactly one slot invocation and merges results back in input
    /// order — no item skipped, none visited twice, for any (len, slots,
    /// workers) combination.
    #[test]
    fn stripes_cover_the_input_exactly_once(
        len in 0usize..=200,
        slots in 0usize..=12,
        workers in 1usize..=8,
    ) {
        let pool = WorkerPool::new(workers);
        let items: Vec<usize> = (0..len).collect();
        let visits = AtomicUsize::new(0);
        let out = map_indexed(&pool, slots, &items, || (), |(), i, &item| {
            visits.fetch_add(1, Ordering::Relaxed);
            (i, item)
        });
        // Exactly one visit per item...
        prop_assert_eq!(visits.load(Ordering::Relaxed), len);
        // ...merged back in input order with the matching item.
        prop_assert_eq!(out.len(), len);
        for (pos, &(i, item)) in out.iter().enumerate() {
            prop_assert_eq!(pos, i);
            prop_assert_eq!(pos, item);
        }
    }

    /// Chunking is a partition of the buffer: every element is written by
    /// exactly one chunk invocation, and chunk `c` sees exactly the slice
    /// `[c * chunk_len, ...)` of the original buffer.
    #[test]
    fn chunks_cover_the_buffer_exactly_once(
        len in 0usize..=300,
        chunk_len in 1usize..=48,
        slots in 0usize..=12,
        workers in 1usize..=8,
    ) {
        let pool = WorkerPool::new(workers);
        let mut data: Vec<u64> = (0..len as u64).collect();
        for_each_chunk_mut(&pool, slots, &mut data, chunk_len, |c, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                let expect = (c * chunk_len + off) as u64;
                assert_eq!(*v, expect, "chunk {c} got the wrong slice");
                *v += 1_000_000;
            }
        });
        // Every element written exactly once (double writes would add
        // 2_000_000; gaps would leave the original value).
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(v, i as u64 + 1_000_000);
        }
    }
}
