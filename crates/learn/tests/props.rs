//! Property tests pinning the serving-side contracts the fleet trusts:
//!
//! 1. **Feature extraction is deterministic and total** — any input
//!    snapshot (including NaN/inf smuggled into every float field) maps to
//!    the same finite `[0, 1]` vector every time.
//! 2. **Score ordering is permutation-invariant** — shuffling the order
//!    candidates are presented in never changes which candidate ranks
//!    where, because scoring is a pure per-candidate function.
//! 3. **Codec round-trip** — any finite model survives
//!    encode → decode bit-exactly, and any single-byte corruption of the
//!    payload region is detected.

use proptest::prelude::*;

use clite_learn::{decode, encode, extract, Headroom, RankingModel};
use clite_learn::{FleetInput, JobInput, NodeInput, FEATURE_DIM, FEATURE_VERSION};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn extraction_is_total_and_normalized(
        lc: bool,
        qos_met: bool,
        jobs in 0usize..32,
        lc_jobs in 0usize..32,
        mean_pct in 0u32..200,
        max_pct in 0u32..200,
        alive in 0usize..512,
        // Raw f64 bit patterns: hits NaN, ±inf, subnormals, and ordinary
        // values alike. [0]=job load, [1]=qos target, [2]=lc_load,
        // [3]=bg_perf, [4]=headroom mean, [5]=headroom sigma,
        // [6]=fleet mean load, [7]=admission rate.
        bits in prop::collection::vec(any::<u64>(), 8usize),
    ) {
        let j = JobInput {
            latency_critical: lc,
            load: f64::from_bits(bits[0]),
            qos_target_us: f64::from_bits(bits[1]),
        };
        let n = NodeInput {
            jobs,
            lc_jobs,
            lc_load: f64::from_bits(bits[2]),
            bg_perf: if bits[3] % 2 == 0 { None } else { Some(f64::from_bits(bits[3])) },
            qos_met,
            mix_mean_load_pct: mean_pct,
            mix_max_load_pct: max_pct,
            headroom: Headroom {
                predicted: f64::from_bits(bits[4]),
                sigma: f64::from_bits(bits[5]),
            },
        };
        let fleet = FleetInput {
            alive_nodes: alive,
            mean_lc_load: f64::from_bits(bits[6]),
            admission_rate: f64::from_bits(bits[7]),
        };
        let a = extract(&j, &n, &fleet);
        let b = extract(&j, &n, &fleet);
        prop_assert_eq!(a, b, "extraction must be deterministic");
        for (i, v) in a.iter().enumerate() {
            prop_assert!(v.is_finite(), "feature {} must be finite, got {}", i, v);
            prop_assert!((0.0..=1.0).contains(v), "feature {} out of range: {}", i, v);
        }
    }

    #[test]
    fn score_ordering_is_invariant_under_candidate_permutation(
        weight_cents in prop::collection::vec(-400i32..400, FEATURE_DIM),
        feature_cents in prop::collection::vec(0i32..101, 4 * FEATURE_DIM),
        rot in 0usize..4,
    ) {
        let model = RankingModel {
            feature_version: FEATURE_VERSION,
            weights: weight_cents.iter().map(|&c| f64::from(c) / 100.0).collect(),
            epochs: 1,
            train_loss: 0.5,
        };
        let candidates: Vec<[f64; FEATURE_DIM]> = (0..4)
            .map(|c| {
                let mut v = [0.0; FEATURE_DIM];
                for (i, x) in v.iter_mut().enumerate() {
                    *x = f64::from(feature_cents[c * FEATURE_DIM + i]) / 100.0;
                }
                v
            })
            .collect();
        // Rank by (score desc, original index asc) from two presentation
        // orders: identity and a rotation. The pure per-candidate scorer
        // plus the index tie-break makes the result order-independent.
        let scores: Vec<f64> = candidates.iter().map(|f| model.score(f)).collect();
        let rank = |order: &[usize]| -> Vec<usize> {
            let mut idx: Vec<usize> = order.to_vec();
            idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            idx
        };
        let identity: Vec<usize> = (0..4).collect();
        let rotated: Vec<usize> = (0..4).map(|i| (i + rot) % 4).collect();
        prop_assert_eq!(rank(&identity), rank(&rotated));
    }

    #[test]
    fn codec_round_trips_any_finite_model(
        weight_cents in prop::collection::vec(-10_000i32..10_000, FEATURE_DIM),
        epochs in 0u32..1000,
        loss_cents in 0i32..100_000,
    ) {
        let model = RankingModel {
            feature_version: FEATURE_VERSION,
            weights: weight_cents.iter().map(|&c| f64::from(c) / 128.0).collect(),
            epochs,
            train_loss: f64::from(loss_cents) / 1000.0,
        };
        let bytes = encode(&model);
        let back = decode(&bytes);
        prop_assert_eq!(back.as_ref(), Some(&model));

        // Flip one payload byte: the frame checksum must catch it.
        let mut corrupt = bytes.clone();
        let pos = 12 + 16 + (epochs as usize % (corrupt.len() - 28));
        corrupt[pos] ^= 0x01;
        prop_assert!(decode(&corrupt).is_none(), "single-byte flip at {} accepted", pos);
    }
}
