//! Pins the training-determinism acceptance criterion: the same seed
//! yields bit-identical weights at any worker-slot count (and therefore at
//! any `CLITE_PAR_THREADS`, which only sizes the global pool — the slot
//! count is the only parallelism knob that reaches `map_indexed`).

use clite_learn::{train_with_slots, RankingModel, TrainConfig};
use clite_telemetry::Telemetry;

fn config() -> TrainConfig {
    TrainConfig { groups: 10, candidates: 3, label_windows: 4, epochs: 4, ..TrainConfig::smoke(42) }
}

fn weights_bits(model: &RankingModel) -> Vec<u64> {
    model.weights.iter().map(|w| w.to_bits()).collect()
}

#[test]
fn training_is_bit_identical_across_slot_counts() {
    let t = Telemetry::disabled();
    let serial = train_with_slots(&config(), 1, &t);
    for slots in [2, 3, 4, 8] {
        let pooled = train_with_slots(&config(), slots, &t);
        assert_eq!(
            weights_bits(&serial),
            weights_bits(&pooled),
            "slots={slots} diverged from serial training"
        );
        assert_eq!(serial, pooled);
    }
}

#[test]
fn different_seeds_train_different_models() {
    let t = Telemetry::disabled();
    let a = train_with_slots(&config(), 1, &t);
    let b = train_with_slots(&TrainConfig { seed: 43, ..config() }, 1, &t);
    assert_ne!(weights_bits(&a), weights_bits(&b), "seed must reach the rollouts");
}

#[test]
fn trained_model_survives_codec_round_trip_bit_exactly() {
    let t = Telemetry::disabled();
    let model = train_with_slots(&config(), 4, &t);
    let back = clite_learn::decode(&clite_learn::encode(&model)).expect("round trip");
    assert_eq!(weights_bits(&model), weights_bits(&back));
}
