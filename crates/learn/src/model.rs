//! The pairwise ranking model: a linear scorer over the feature schema.
//!
//! Candidate ordering only needs *relative* scores, so the model is a
//! plain dot product — no softmax at serving time, no hidden state, no
//! allocation. The pairwise logistic loss it is trained under
//! ([`crate::train()`]) makes `score(a) > score(b)` mean "placing on `a`
//! kept QoS safer than on `b`" in the rollout distribution.
//!
//! The all-zero model is the designated fallback: it scores every
//! candidate identically, and the serving tie-break (least committed LC
//! load, then node id) reproduces the heuristic order exactly — so a
//! missing or corrupt model file degrades to the default policy instead
//! of failing admission.

use crate::features::{FeatureVector, FEATURE_DIM, FEATURE_VERSION};

/// A trained (or zero-initialized) linear ranking model.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingModel {
    /// Feature-schema version the weights were trained against.
    pub feature_version: u32,
    /// One weight per feature component.
    pub weights: Vec<f64>,
    /// Training epochs the weights went through (0 for the zero model).
    pub epochs: u32,
    /// Final mean pairwise training loss (ln 2 is the untrained level).
    pub train_loss: f64,
}

impl RankingModel {
    /// The all-zero fallback model: every candidate ties, the caller's
    /// tie-break reproduces the heuristic order.
    #[must_use]
    pub fn zeroed() -> Self {
        Self {
            feature_version: FEATURE_VERSION,
            weights: vec![0.0; FEATURE_DIM],
            epochs: 0,
            train_loss: 0.0,
        }
    }

    /// True if every weight is exactly zero (the heuristic-fallback
    /// state).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.weights.iter().all(|&w| w == 0.0)
    }

    /// Scores one feature vector. Pure dot product: deterministic, and
    /// invariant to the order candidates are presented in.
    #[must_use]
    pub fn score(&self, features: &FeatureVector) -> f64 {
        debug_assert_eq!(self.weights.len(), FEATURE_DIM);
        self.weights.iter().zip(features.iter()).map(|(w, f)| w * f).sum()
    }
}

impl Default for RankingModel {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_scores_everything_zero() {
        let m = RankingModel::zeroed();
        assert!(m.is_zero());
        assert_eq!(m.score(&[1.0; FEATURE_DIM]), 0.0);
        assert_eq!(m.score(&[0.3; FEATURE_DIM]), 0.0);
    }

    #[test]
    fn score_is_linear_in_features() {
        let mut m = RankingModel::zeroed();
        m.weights[2] = 2.0;
        m.weights[5] = -1.0;
        let mut f = [0.0; FEATURE_DIM];
        f[2] = 0.5;
        f[5] = 0.25;
        assert!((m.score(&f) - 0.75).abs() < 1e-15);
    }
}
