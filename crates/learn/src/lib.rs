//! Trained placement scoring for fleet admission.
//!
//! CLITE's cluster layer orders candidate nodes with fixed heuristics
//! (least-loaded, bin-packing, the mean-field target template). This crate
//! learns that ordering instead: a deterministic [feature
//! extractor](features) turns per-(job, candidate-node) state into a
//! fixed, versioned vector; a pure-Rust [pairwise ranking model](model)
//! scores it; a seeded [trainer](train()) fits the weights against rollouts
//! generated in the simulator, with labels read **only** through the
//! [`clite_sim::testbed::OracleTestbed::ground_truth`] fence — serving
//! code never sees ground truth, exactly like the controller itself.
//!
//! ## Determinism contract
//!
//! Everything here is a pure function of its inputs and a seed:
//!
//! - feature extraction is total (no NaN/inf escapes, every component in
//!   `[0, 1]`) and byte-stable;
//! - training parallelizes over the shared [`clite_par`] pool with
//!   item-order merges and sequential weight updates, so the fitted
//!   weights are bit-identical at any `CLITE_PAR_THREADS` worker count;
//! - the [`codec`] round-trips models through a checksummed,
//!   versioned file format (the `clite-store` framing idiom) and degrades
//!   a missing or corrupt file to the all-zero model, whose score ties on
//!   every candidate — the caller's tie-break reproduces the heuristic
//!   order, so a bad model file can never fail admission.

pub mod codec;
pub mod features;
pub mod headroom;
pub mod model;
pub mod train;

pub use codec::{decode, encode, load, load_or_zeroed, save, ModelError};
pub use features::{
    extract, FeatureVector, FleetInput, JobInput, NodeInput, FEATURE_DIM, FEATURE_VERSION,
};
pub use headroom::Headroom;
pub use model::RankingModel;
pub use train::{train, train_with_slots, TrainConfig};
