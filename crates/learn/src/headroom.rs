//! Surrogate QoS-headroom prediction: a tiny GP over a node's committed
//! search trace.
//!
//! A candidate node's last CLITE search left a trace of (sample index,
//! Eq. 3 score) points. Fitting a one-dimensional GP over that trace and
//! reading the posterior at the *end* of the trace gives a smoothed
//! estimate of the score level the node's committed mix converged to —
//! the QoS headroom the next co-runner would inherit — plus a posterior
//! standard deviation that says how settled the search was. Both feed the
//! feature vector ([`crate::features::extract`]).
//!
//! The fit uses fixed hyper-parameters (no grid search): prediction must
//! be cheap enough for the admission path and — more importantly —
//! deterministic, since candidate ordering feeds the fleet's
//! byte-identity contract.

use clite_gp::gp::{GaussianProcess, GpConfig};
use clite_gp::kernel::Kernel;

/// A surrogate headroom prediction for one candidate node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headroom {
    /// Posterior mean score at the end of the node's search trace,
    /// clamped to `[0, 1]` (0.5 when no trace exists: unknown, neither
    /// safe nor violating).
    pub predicted: f64,
    /// Posterior standard deviation (1.0 when no trace exists — maximal
    /// uncertainty).
    pub sigma: f64,
}

impl Headroom {
    /// The no-information prior: an empty node (or one whose trace is too
    /// short to fit) predicts 0.5 with full uncertainty.
    #[must_use]
    pub fn prior() -> Self {
        Self { predicted: 0.5, sigma: 1.0 }
    }
}

impl Default for Headroom {
    fn default() -> Self {
        Self::prior()
    }
}

/// Predicts headroom from a node's `(position, score)` trace, where
/// `position` is the sample index normalized to `[0, 1]` and `score` the
/// Eq. 3 value observed there. Needs at least two finite points; anything
/// less (or a failed factorization) returns [`Headroom::prior`].
#[must_use]
pub fn predict(trace: &[(f64, f64)]) -> Headroom {
    let clean: Vec<(f64, f64)> =
        trace.iter().copied().filter(|(x, y)| x.is_finite() && y.is_finite()).collect();
    if clean.len() < 2 {
        return Headroom::prior();
    }
    let xs: Vec<Vec<f64>> = clean.iter().map(|&(x, _)| vec![x]).collect();
    let ys: Vec<f64> = clean.iter().map(|&(_, y)| y).collect();
    let kernel = Kernel::matern52(0.25, 0.3);
    let config = GpConfig { noise_variance: 1e-3 };
    match GaussianProcess::fit(kernel, config, xs, ys) {
        Ok(gp) => {
            let (mean, std) = gp.predict(&[1.0]);
            if mean.is_finite() && std.is_finite() {
                Headroom { predicted: mean.clamp(0.0, 1.0), sigma: std.max(0.0) }
            } else {
                Headroom::prior()
            }
        }
        Err(_) => Headroom::prior(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_traces_fall_back_to_prior() {
        assert_eq!(predict(&[]), Headroom::prior());
        assert_eq!(predict(&[(0.0, 0.8)]), Headroom::prior());
        assert_eq!(predict(&[(f64::NAN, 0.8), (0.5, f64::INFINITY)]), Headroom::prior());
    }

    #[test]
    fn converged_trace_predicts_near_its_tail() {
        let trace: Vec<(f64, f64)> =
            (0..8).map(|i| (i as f64 / 7.0, 0.4 + 0.05 * i as f64)).collect();
        let h = predict(&trace);
        assert!(h.predicted > 0.55, "tail of a rising trace is high: {}", h.predicted);
        assert!(h.sigma < 1.0, "a fitted trace is more certain than the prior");
    }

    #[test]
    fn prediction_is_deterministic() {
        let trace = vec![(0.0, 0.3), (0.5, 0.6), (1.0, 0.7)];
        let a = predict(&trace);
        let b = predict(&trace);
        assert_eq!(a, b);
        assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
    }
}
