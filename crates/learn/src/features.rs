//! The versioned feature schema: one fixed vector per (job, candidate
//! node) pair.
//!
//! Inputs arrive as plain snapshots ([`JobInput`], [`NodeInput`],
//! [`FleetInput`]) so the extractor depends on no cluster types — the
//! cluster crate converts its `NodeStats`/`ClusterStats` into these and
//! calls [`extract`]. Every component is squashed into `[0, 1]` through
//! [`unit()`], which also maps NaN/inf to `0.0`: extraction is a *total*
//! function of its inputs, pinned by property tests.
//!
//! The schema is versioned ([`FEATURE_VERSION`]): a serialized model
//! records the version it was trained against, and the codec rejects a
//! model whose version (or dimension) no longer matches — the caller then
//! degrades to the zero model instead of scoring garbage.

use clite_store::signature::quantize_load;

/// Version of the feature schema below. Bump when the meaning, order, or
/// count of components changes.
pub const FEATURE_VERSION: u32 = 1;

/// Number of feature components.
pub const FEATURE_DIM: usize = 14;

/// One extracted feature vector.
pub type FeatureVector = [f64; FEATURE_DIM];

/// Physical job slots per node (the testbed catalog's core count); used
/// to normalize job-count features.
const MAX_JOBS_PER_NODE: f64 = 10.0;

/// QoS-target squash scale (µs): `target / (target + SCALE)` maps the
/// testbed's sub-millisecond targets into the middle of `[0, 1]`.
const QOS_SQUASH_US: f64 = 1000.0;

/// The incoming job, as the extractor sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobInput {
    /// Latency-critical (true) or background (false).
    pub latency_critical: bool,
    /// Offered load fraction at arrival time (0 for BG jobs).
    pub load: f64,
    /// QoS tail-latency target in µs (0 for BG jobs).
    pub qos_target_us: f64,
}

/// One candidate node's committed state.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInput {
    /// Jobs committed to the node.
    pub jobs: usize,
    /// Latency-critical jobs among them.
    pub lc_jobs: usize,
    /// Sum of committed LC load fractions.
    pub lc_load: f64,
    /// Mean BG throughput at the committed partition (`None` when the
    /// node hosts no BG jobs; treated as unimpeded).
    pub bg_perf: Option<f64>,
    /// Whether the committed partition meets every QoS target.
    pub qos_met: bool,
    /// Mean quantized load (whole percent) over the node's post-placement
    /// mix — the store's [`clite_store::MixSignature`] load coordinates
    /// for the mix the candidate would run.
    pub mix_mean_load_pct: u32,
    /// Max quantized load (whole percent) over the post-placement mix.
    pub mix_max_load_pct: u32,
    /// Surrogate QoS-headroom prediction for this node (GP posterior over
    /// the node's committed search trace; see [`crate::headroom`]).
    pub headroom: crate::headroom::Headroom,
}

/// Fleet-wide aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetInput {
    /// Nodes still in service.
    pub alive_nodes: usize,
    /// Mean committed LC load over alive nodes.
    pub mean_lc_load: f64,
    /// Fraction of submitted jobs placed so far.
    pub admission_rate: f64,
}

/// Clamps `x` into `[0, 1]`, mapping NaN/inf to `0.0`. Total by
/// construction — the reason no reachable input can smuggle a non-finite
/// value into a feature vector.
#[must_use]
pub fn unit(x: f64) -> f64 {
    if x.is_finite() {
        x.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Mean/max quantized load (whole percent) of a post-placement mix given
/// the node's committed per-job loads plus the incoming job's load, all as
/// fractions. Convenience for callers assembling a [`NodeInput`].
#[must_use]
pub fn mix_load_pcts(committed_loads: &[f64], incoming_load: f64) -> (u32, u32) {
    let pcts: Vec<u32> = committed_loads
        .iter()
        .copied()
        .chain(std::iter::once(incoming_load))
        .map(quantize_load)
        .collect();
    let sum: u64 = pcts.iter().map(|&p| u64::from(p)).sum();
    let mean = (sum / pcts.len().max(1) as u64) as u32;
    let max = pcts.iter().copied().max().unwrap_or(0);
    (mean, max)
}

/// Extracts the versioned feature vector for one (job, candidate-node)
/// pair. Deterministic, total, every component in `[0, 1]`.
#[must_use]
pub fn extract(job: &JobInput, node: &NodeInput, fleet: &FleetInput) -> FeatureVector {
    let qos_squash = if job.qos_target_us > 0.0 {
        job.qos_target_us / (job.qos_target_us + QOS_SQUASH_US)
    } else {
        0.0
    };
    // Signed load pressure relative to the fleet mean, recentred onto
    // [0, 1]: 0.5 = at the mean, 0 = a full load unit under, 1 = over.
    let relative_pressure = (node.lc_load - fleet.mean_lc_load + 1.0) / 2.0;
    let sigma = node.headroom.sigma;
    [
        unit(if job.latency_critical { 1.0 } else { 0.0 }),
        unit(job.load),
        unit(qos_squash),
        unit(node.lc_load),
        unit(node.jobs as f64 / MAX_JOBS_PER_NODE),
        unit(node.lc_jobs as f64 / MAX_JOBS_PER_NODE),
        unit(if node.qos_met { 1.0 } else { 0.0 }),
        unit(node.bg_perf.unwrap_or(1.0)),
        unit(f64::from(node.mix_mean_load_pct) / 100.0),
        unit(f64::from(node.mix_max_load_pct) / 100.0),
        unit(relative_pressure),
        unit(fleet.admission_rate),
        unit(node.headroom.predicted),
        unit(if sigma.is_finite() && sigma >= 0.0 { sigma / (sigma + 1.0) } else { 0.0 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headroom::Headroom;

    fn job() -> JobInput {
        JobInput { latency_critical: true, load: 0.4, qos_target_us: 500.0 }
    }

    fn node() -> NodeInput {
        NodeInput {
            jobs: 2,
            lc_jobs: 1,
            lc_load: 0.3,
            bg_perf: Some(0.8),
            qos_met: true,
            mix_mean_load_pct: 45,
            mix_max_load_pct: 60,
            headroom: Headroom { predicted: 0.7, sigma: 0.1 },
        }
    }

    fn fleet() -> FleetInput {
        FleetInput { alive_nodes: 8, mean_lc_load: 0.25, admission_rate: 0.95 }
    }

    #[test]
    fn extraction_is_deterministic_and_in_range() {
        let a = extract(&job(), &node(), &fleet());
        let b = extract(&job(), &node(), &fleet());
        assert_eq!(a, b);
        for (i, v) in a.iter().enumerate() {
            assert!(v.is_finite() && (0.0..=1.0).contains(v), "feature {i} = {v}");
        }
    }

    #[test]
    fn non_finite_inputs_are_squashed_not_propagated() {
        let mut bad_node = node();
        bad_node.lc_load = f64::NAN;
        bad_node.bg_perf = Some(f64::INFINITY);
        bad_node.headroom = Headroom { predicted: f64::NEG_INFINITY, sigma: f64::NAN };
        let mut bad_fleet = fleet();
        bad_fleet.mean_lc_load = f64::INFINITY;
        bad_fleet.admission_rate = f64::NAN;
        let v = extract(&job(), &bad_node, &bad_fleet);
        for (i, x) in v.iter().enumerate() {
            assert!(x.is_finite() && (0.0..=1.0).contains(x), "feature {i} = {x}");
        }
    }

    #[test]
    fn mix_load_pcts_quantize_like_the_store() {
        let (mean, max) = mix_load_pcts(&[0.2, 0.6], 0.4);
        assert_eq!(max, 60);
        assert_eq!(mean, 40);
        let (mean, max) = mix_load_pcts(&[], 0.0);
        assert_eq!((mean, max), (0, 0));
    }

    #[test]
    fn bg_job_zeroes_job_features() {
        let bg = JobInput { latency_critical: false, load: 0.0, qos_target_us: 0.0 };
        let v = extract(&bg, &node(), &fleet());
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
    }
}
