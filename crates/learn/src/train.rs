//! Deterministic seeded training over oracle-fenced simulator rollouts.
//!
//! ## Rollouts
//!
//! Each *group* is one admission decision: an incoming job and a set of
//! synthetic candidate nodes (each with its own committed mix). The
//! group's feature vectors come from the same extractor serving uses
//! ([`crate::features::extract`]); its **labels** come from post-placement
//! ground truth — the mix plus the incoming job is evaluated on a
//! [`Server`] through its oracle-side `ground_truth` reading (the same
//! fence `clite_sim::testbed::OracleTestbed` draws) over a fixed set of
//! partitions, yielding the QoS-safe window fraction, the windows-to-QoS
//! delay, and a would-migrate indicator. Ground truth crosses the fence
//! *only* here, at training time; the serving path scores features alone.
//!
//! ## Objective
//!
//! Pairwise logistic ranking (RankNet-style): for candidates `a`, `b` in
//! one group with `label(a) > label(b)`, minimize
//! `ln(1 + exp(-(s_a - s_b)))` over the linear scores. The bias cancels
//! in every pair, so the model is weights-only.
//!
//! ## Parallel byte-identity
//!
//! Rollout generation and per-batch gradients fan out over the shared
//! [`clite_par`] pool via `map_indexed` — per-item work is a pure
//! function of the item, results merge in item order, and the gradient
//! fold plus the weight update run sequentially on the caller. The fitted
//! weights are therefore bit-identical at any `CLITE_PAR_THREADS` worker
//! count (pinned by `tests/determinism.rs` and the CI pool-size loop).

use clite_sim::prelude::*;
use clite_telemetry::{Event, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::{
    extract, mix_load_pcts, FeatureVector, FleetInput, JobInput, NodeInput, FEATURE_DIM,
    FEATURE_VERSION,
};
use crate::headroom;
use crate::model::RankingModel;

/// Training hyper-parameters. All deterministic knobs: the same config
/// always yields the same model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Rollout groups (admission decisions) generated.
    pub groups: usize,
    /// Candidate nodes per group.
    pub candidates: usize,
    /// Ground-truth partitions evaluated per candidate label.
    pub label_windows: usize,
    /// Passes over the rollout set.
    pub epochs: u32,
    /// Groups per weight update.
    pub batch: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// Seed for rollout generation and epoch shuffles.
    pub seed: u64,
}

impl TrainConfig {
    /// Smoke-scale defaults: seconds of wall clock, enough signal for the
    /// A/B experiment and the CI training run.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            groups: 24,
            candidates: 4,
            label_windows: 6,
            epochs: 12,
            batch: 8,
            learning_rate: 0.5,
            seed,
        }
    }
}

/// One rollout group: per-candidate features and oracle labels.
struct Group {
    features: Vec<FeatureVector>,
    labels: Vec<f64>,
}

/// Mixes a group index into the config seed (SplitMix64 constant), so
/// groups draw independent deterministic streams.
fn group_seed(seed: u64, group: usize) -> u64 {
    seed ^ (group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A bounded `[0, 1]` goodness proxy for one observed window, shaped like
/// the Eq. 3 score: above 0.5 only when every LC job met QoS, scaled by
/// mean normalized performance.
fn window_proxy(obs: &Observation) -> f64 {
    let perfs: Vec<f64> = obs.jobs.iter().map(|j| j.normalized_perf.clamp(0.0, 1.0)).collect();
    let mean_perf =
        if perfs.is_empty() { 0.0 } else { perfs.iter().sum::<f64>() / perfs.len() as f64 };
    if obs.all_qos_met() {
        0.5 + 0.5 * mean_perf
    } else {
        0.5 * mean_perf
    }
}

/// Evaluates `windows` ground-truth partitions on `server`: equal-share
/// first, then seeded random partitions. Returns the per-window proxy
/// scores and QoS verdicts, in evaluation order.
fn ground_truth_windows(
    server: &Server,
    windows: usize,
    rng: &mut StdRng,
) -> (Vec<f64>, Vec<bool>) {
    let catalog = *server.catalog();
    let jobs = server.job_count();
    let mut proxies = Vec::with_capacity(windows);
    let mut safe = Vec::with_capacity(windows);
    for w in 0..windows {
        let partition = if w == 0 {
            Partition::equal_share(&catalog, jobs).expect("catalog fits its own job count")
        } else {
            Partition::random(&catalog, jobs, rng).expect("catalog fits its own job count")
        };
        // THE ORACLE FENCE: ground truth is read here, at training time,
        // and nowhere on the serving path.
        let obs = server.ground_truth(&partition);
        proxies.push(window_proxy(&obs));
        safe.push(obs.all_qos_met());
    }
    (proxies, safe)
}

/// Builds one candidate's committed mix: a deterministic handful of LC/BG
/// jobs keyed off the group and candidate indices.
fn candidate_mix(group: usize, candidate: usize, rng: &mut StdRng) -> Vec<JobSpec> {
    let count = (group + candidate) % 3; // 0, 1, or 2 committed jobs
    (0..count)
        .map(|k| {
            if (candidate + k).is_multiple_of(2) {
                let w = WorkloadId::LATENCY_CRITICAL[(group + candidate + k) % 5];
                JobSpec::latency_critical(w, rng.gen_range(0.15..0.45))
            } else {
                JobSpec::background(WorkloadId::BACKGROUND[(group + candidate + k) % 6])
            }
        })
        .collect()
}

/// Generates one rollout group: the incoming job, `candidates` synthetic
/// nodes, their feature vectors, and their oracle labels.
fn build_group(config: &TrainConfig, group: usize) -> Group {
    let mut rng = StdRng::seed_from_u64(group_seed(config.seed, group));
    let catalog = ResourceCatalog::testbed();

    // The incoming job: mostly LC at a varied load, sometimes BG, so the
    // model sees both classes.
    let incoming = if group % 5 == 4 {
        JobSpec::background(WorkloadId::BACKGROUND[group % 6])
    } else {
        let w = WorkloadId::LATENCY_CRITICAL[group % 5];
        JobSpec::latency_critical(w, rng.gen_range(0.2..0.7))
    };
    let incoming_load = match incoming.class() {
        JobClass::LatencyCritical => incoming.load.at(0.0),
        JobClass::Background => 0.0,
    };
    let job_input = JobInput {
        latency_critical: incoming.class() == JobClass::LatencyCritical,
        load: incoming_load,
        qos_target_us: match incoming.class() {
            JobClass::LatencyCritical => QosSpec::derive(incoming.workload, &catalog).target_us,
            JobClass::Background => 0.0,
        },
    };

    let mixes: Vec<Vec<JobSpec>> =
        (0..config.candidates).map(|c| candidate_mix(group, c, &mut rng)).collect();
    let mean_lc_load = mixes
        .iter()
        .map(|m| {
            m.iter()
                .filter(|j| j.class() == JobClass::LatencyCritical)
                .map(|j| j.load.at(0.0))
                .sum::<f64>()
        })
        .sum::<f64>()
        / config.candidates.max(1) as f64;
    let fleet_input =
        FleetInput { alive_nodes: config.candidates, mean_lc_load, admission_rate: 1.0 };

    let mut features = Vec::with_capacity(config.candidates);
    let mut labels = Vec::with_capacity(config.candidates);
    for (c, mix) in mixes.iter().enumerate() {
        let lc_loads: Vec<f64> = mix
            .iter()
            .filter(|j| j.class() == JobClass::LatencyCritical)
            .map(|j| j.load.at(0.0))
            .collect();
        let committed_loads: Vec<f64> = mix
            .iter()
            .map(|j| match j.class() {
                JobClass::LatencyCritical => j.load.at(0.0),
                JobClass::Background => 1.0,
            })
            .collect();
        let (mix_mean, mix_max) = mix_load_pcts(&committed_loads, incoming_load);

        // Pre-placement node state: observe the committed mix (if any)
        // through ground truth to synthesize what the node's incremental
        // stats would report, plus a headroom trace for the surrogate.
        let node_seed = group_seed(config.seed, group).wrapping_add(1 + c as u64);
        let (qos_met, bg_perf, head) = if mix.is_empty() {
            (true, None, headroom::Headroom::prior())
        } else {
            let server =
                Server::new(catalog, mix.clone(), node_seed).expect("synthetic mix fits catalog");
            let mut trace_rng = StdRng::seed_from_u64(node_seed ^ 0xA5A5_A5A5_A5A5_A5A5);
            let (proxies, safe) = ground_truth_windows(&server, 4, &mut trace_rng);
            let trace: Vec<(f64, f64)> = proxies
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64 / (proxies.len() - 1).max(1) as f64, y))
                .collect();
            let bg_perf = if mix.iter().any(|j| j.class() == JobClass::Background) {
                server
                    .ground_truth(&Partition::equal_share(&catalog, mix.len()).unwrap())
                    .mean_bg_perf()
            } else {
                None
            };
            (safe.iter().any(|&s| s), bg_perf, headroom::predict(&trace))
        };
        let node_input = NodeInput {
            jobs: mix.len(),
            lc_jobs: mix.iter().filter(|j| j.class() == JobClass::LatencyCritical).count(),
            lc_load: lc_loads.iter().sum(),
            bg_perf,
            qos_met,
            mix_mean_load_pct: mix_mean,
            mix_max_load_pct: mix_max,
            headroom: head,
        };
        features.push(extract(&job_input, &node_input, &fleet_input));

        // Post-placement label, behind the oracle fence: QoS-safe window
        // fraction, windows-to-QoS delay, and a would-migrate penalty.
        let mut placed: Vec<JobSpec> = mix.clone();
        placed.push(incoming.clone());
        let server = Server::new(catalog, placed, node_seed.wrapping_add(7))
            .expect("synthetic mix fits catalog");
        let mut label_rng = StdRng::seed_from_u64(node_seed ^ 0x5A5A_5A5A_5A5A_5A5A);
        let (_, safe) = ground_truth_windows(&server, config.label_windows, &mut label_rng);
        let windows = safe.len().max(1) as f64;
        let qos_safe_frac = safe.iter().filter(|&&s| s).count() as f64 / windows;
        let to_qos = safe.iter().position(|&s| s).map_or(1.0, |i| i as f64 / windows);
        let migration = if safe.iter().any(|&s| s) { 0.0 } else { 1.0 };
        labels.push(qos_safe_frac - 0.3 * to_qos - 0.2 * migration);
    }
    Group { features, labels }
}

/// Stable `ln(1 + exp(-s))`.
fn log1p_exp_neg(s: f64) -> f64 {
    (-s).max(0.0) + (-s.abs()).exp().ln_1p()
}

/// Full pairwise gradient and loss for one group under the current
/// weights. Pure in `(weights, group)` — the unit of parallel fan-out.
fn group_gradient(weights: &[f64], group: &Group) -> (Vec<f64>, f64, u64) {
    let mut grad = vec![0.0; FEATURE_DIM];
    let mut loss = 0.0;
    let mut pairs = 0u64;
    for i in 0..group.labels.len() {
        for j in 0..group.labels.len() {
            if i == j || group.labels[i] <= group.labels[j] + 1e-9 {
                continue;
            }
            // labels[i] > labels[j]: candidate i should outscore j.
            let delta: Vec<f64> = group.features[i]
                .iter()
                .zip(group.features[j].iter())
                .map(|(a, b)| a - b)
                .collect();
            let s: f64 = weights.iter().zip(&delta).map(|(w, d)| w * d).sum();
            let p = 1.0 / (1.0 + (-s).exp());
            loss += log1p_exp_neg(s);
            for (g, d) in grad.iter_mut().zip(&delta) {
                *g -= (1.0 - p) * d;
            }
            pairs += 1;
        }
    }
    (grad, loss, pairs)
}

/// Deterministic Fisher–Yates shuffle driven by its own seeded stream.
fn shuffle(order: &mut [usize], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
}

/// Trains a ranking model on the shared worker pool (one slot per pool
/// worker). Same config ⇒ bit-identical weights at any pool size.
#[must_use]
pub fn train(config: &TrainConfig, telemetry: &Telemetry<'_>) -> RankingModel {
    train_with_slots(config, clite_par::WorkerPool::global().size(), telemetry)
}

/// [`train`] with an explicit pool-slot count — the determinism tests
/// compare `slots = 1` (fully inline) against the pooled run.
#[must_use]
pub fn train_with_slots(
    config: &TrainConfig,
    slots: usize,
    telemetry: &Telemetry<'_>,
) -> RankingModel {
    let pool = clite_par::WorkerPool::global();
    let group_ids: Vec<usize> = (0..config.groups).collect();
    // Rollout generation: independent per group, merged in group order —
    // the worker count never reaches the data.
    let groups: Vec<Group> =
        clite_par::map_indexed(pool, slots, &group_ids, || (), |(), _, &g| build_group(config, g));

    let mut weights = vec![0.0; FEATURE_DIM];
    let mut last_epoch_loss = 0.0;
    for epoch in 0..config.epochs {
        let mut order: Vec<usize> = (0..groups.len()).collect();
        shuffle(&mut order, config.seed.wrapping_add(u64::from(epoch).wrapping_mul(0x9E37)));
        let mut epoch_loss = 0.0;
        let mut epoch_pairs = 0u64;
        for batch in order.chunks(config.batch.max(1)) {
            // Per-group gradients in parallel; the fold and the update
            // stay sequential on the caller, in batch order.
            let parts: Vec<(Vec<f64>, f64, u64)> = clite_par::map_indexed(
                pool,
                slots,
                batch,
                || (),
                |(), _, &g| group_gradient(&weights, &groups[g]),
            );
            let mut grad = vec![0.0; FEATURE_DIM];
            let mut pairs = 0u64;
            for (g, l, p) in parts {
                for (acc, x) in grad.iter_mut().zip(&g) {
                    *acc += x;
                }
                epoch_loss += l;
                pairs += p;
            }
            if pairs == 0 {
                continue;
            }
            epoch_pairs += pairs;
            let step = config.learning_rate / pairs as f64;
            for (w, g) in weights.iter_mut().zip(&grad) {
                *w -= step * g;
            }
        }
        last_epoch_loss = if epoch_pairs == 0 { 0.0 } else { epoch_loss / epoch_pairs as f64 };
        telemetry.emit(Event::TrainingEpoch { epoch, loss: last_epoch_loss });
    }
    RankingModel {
        feature_version: FEATURE_VERSION,
        weights,
        epochs: config.epochs,
        train_loss: last_epoch_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrainConfig {
        TrainConfig {
            groups: 6,
            candidates: 3,
            label_windows: 3,
            epochs: 3,
            ..TrainConfig::smoke(9)
        }
    }

    #[test]
    fn training_is_deterministic_under_one_config() {
        let t = Telemetry::disabled();
        let a = train_with_slots(&tiny(), 1, &t);
        let b = train_with_slots(&tiny(), 1, &t);
        assert_eq!(a, b);
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn training_reduces_pairwise_loss_below_untrained_level() {
        let t = Telemetry::disabled();
        let model = train(&TrainConfig::smoke(42), &t);
        assert!(!model.is_zero(), "training must move the weights");
        assert!(
            model.train_loss < std::f64::consts::LN_2,
            "final loss {} should beat the coin-flip level",
            model.train_loss
        );
    }

    #[test]
    fn training_emits_epoch_telemetry() {
        use clite_telemetry::MemoryRecorder;
        let sink = MemoryRecorder::new();
        let t = Telemetry::new(&sink);
        let config = tiny();
        let _ = train_with_slots(&config, 1, &t);
        assert_eq!(sink.count_kind("training_epoch"), config.epochs as usize);
    }

    #[test]
    fn rollout_groups_are_pure_functions_of_their_index() {
        let config = tiny();
        let a = build_group(&config, 2);
        let b = build_group(&config, 2);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        let c = build_group(&config, 3);
        assert_ne!(a.labels, c.labels, "different groups draw different rollouts");
    }
}
