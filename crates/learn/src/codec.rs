//! Checksummed, versioned model files.
//!
//! On-disk layout mirrors the `clite-store` log framing
//! ([`clite_store::log`]):
//!
//! ```text
//! [ b"CLITELRN" ][ version: u32 LE ]            file header, 12 bytes
//! [ REC_MAGIC: u32 LE ][ len: u32 LE ]
//! [ fnv1a64(payload): u64 LE ][ payload ]       exactly one frame
//! ```
//!
//! The payload is a fixed little-endian record: feature version, weight
//! dimension, epoch count, a reserved word, the final training loss, then
//! the weights. [`decode`] is a total function — any byte sequence maps
//! to `Some(model)` or `None`, never a panic — and rejects a model whose
//! feature schema no longer matches [`FEATURE_DIM`]/[`FEATURE_VERSION`]:
//! stale weights degrade to the zero model rather than scoring a schema
//! they were never trained on.

use std::io::Write;
use std::path::Path;

use clite_store::log::{fnv1a64, frame, FRAME_PROLOGUE_LEN, MAX_PAYLOAD_LEN, REC_MAGIC};

use crate::features::{FEATURE_DIM, FEATURE_VERSION};
use crate::model::RankingModel;

/// File magic: identifies a clite-learn model file.
pub const MODEL_MAGIC: &[u8; 8] = b"CLITELRN";
/// Current container format version.
pub const MODEL_FORMAT_VERSION: u32 = 1;
/// Header length in bytes (magic + version).
pub const HEADER_LEN: usize = 12;

/// Why a model failed to load.
#[derive(Debug)]
pub enum ModelError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes did not decode to a model under the current schema
    /// (bad magic, torn frame, checksum mismatch, or version/dimension
    /// drift).
    Corrupt,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "model file unreadable: {e}"),
            ModelError::Corrupt => f.write_str("model file corrupt or schema-incompatible"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

/// Serializes a model to its on-disk byte form.
#[must_use]
pub fn encode(model: &RankingModel) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24 + 8 * model.weights.len());
    payload.extend_from_slice(&model.feature_version.to_le_bytes());
    payload.extend_from_slice(&(model.weights.len() as u32).to_le_bytes());
    payload.extend_from_slice(&model.epochs.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes()); // reserved
    payload.extend_from_slice(&model.train_loss.to_le_bytes());
    for w in &model.weights {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    let mut out = Vec::with_capacity(HEADER_LEN + FRAME_PROLOGUE_LEN + payload.len());
    out.extend_from_slice(MODEL_MAGIC);
    out.extend_from_slice(&MODEL_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&frame(&payload));
    out
}

/// Decodes a model from a full file image. Total: returns `None` for any
/// malformed, truncated, bit-flipped, or schema-incompatible input.
#[must_use]
pub fn decode(bytes: &[u8]) -> Option<RankingModel> {
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != MODEL_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().ok()?) != MODEL_FORMAT_VERSION
    {
        return None;
    }
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < FRAME_PROLOGUE_LEN {
        return None;
    }
    if u32::from_le_bytes(rest[0..4].try_into().ok()?) != REC_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(rest[4..8].try_into().ok()?);
    if len > MAX_PAYLOAD_LEN {
        return None;
    }
    let payload = rest.get(FRAME_PROLOGUE_LEN..FRAME_PROLOGUE_LEN + len as usize)?;
    // Trailing garbage after the single frame is corruption too.
    if rest.len() != FRAME_PROLOGUE_LEN + len as usize {
        return None;
    }
    let checksum = u64::from_le_bytes(rest[8..16].try_into().ok()?);
    if fnv1a64(payload) != checksum {
        return None;
    }
    decode_payload(payload)
}

/// Decodes the fixed-layout payload, enforcing the feature schema.
fn decode_payload(payload: &[u8]) -> Option<RankingModel> {
    if payload.len() < 24 {
        return None;
    }
    let feature_version = u32::from_le_bytes(payload[0..4].try_into().ok()?);
    let dim = u32::from_le_bytes(payload[4..8].try_into().ok()?) as usize;
    let epochs = u32::from_le_bytes(payload[8..12].try_into().ok()?);
    let train_loss = f64::from_le_bytes(payload[16..24].try_into().ok()?);
    if feature_version != FEATURE_VERSION || dim != FEATURE_DIM {
        return None;
    }
    if payload.len() != 24 + 8 * dim {
        return None;
    }
    let weights: Vec<f64> = (0..dim)
        .map(|i| {
            let start = 24 + 8 * i;
            f64::from_le_bytes(payload[start..start + 8].try_into().expect("8 bytes"))
        })
        .collect();
    if weights.iter().any(|w| !w.is_finite()) || !train_loss.is_finite() {
        return None;
    }
    Some(RankingModel { feature_version, weights, epochs, train_loss })
}

/// Writes `model` to `path` (atomically: temp file + rename, so a crash
/// mid-save never leaves a torn model where a valid one stood).
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failures.
pub fn save(path: &Path, model: &RankingModel) -> Result<(), ModelError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&encode(model))?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a model from `path`.
///
/// # Errors
///
/// Returns [`ModelError::Io`] if the file cannot be read and
/// [`ModelError::Corrupt`] if its bytes do not decode under the current
/// schema.
pub fn load(path: &Path) -> Result<RankingModel, ModelError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).ok_or(ModelError::Corrupt)
}

/// Loads a model, degrading gracefully: a missing, unreadable, corrupt,
/// or schema-stale file yields the zero model (heuristic-fallback order)
/// plus the error explaining why. This is the serving entry point — a bad
/// model file must never fail admission.
#[must_use]
pub fn load_or_zeroed(path: &Path) -> (RankingModel, Option<ModelError>) {
    match load(path) {
        Ok(model) => (model, None),
        Err(e) => (RankingModel::zeroed(), Some(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> RankingModel {
        RankingModel {
            feature_version: FEATURE_VERSION,
            weights: (0..FEATURE_DIM).map(|i| (i as f64 - 3.0) * 0.125).collect(),
            epochs: 12,
            train_loss: 0.314,
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let model = sample_model();
        let decoded = decode(&encode(&model)).expect("round trip");
        assert_eq!(model, decoded);
        for (a, b) in model.weights.iter().zip(&decoded.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn decode_is_total_on_corrupt_inputs() {
        let good = encode(&sample_model());
        assert!(decode(&[]).is_none());
        assert!(decode(b"CLITELRN").is_none(), "header only");
        assert!(decode(&good[..good.len() - 1]).is_none(), "torn tail");
        assert!(decode(&good[..HEADER_LEN + 3]).is_none(), "torn prologue");
        let mut flipped = good.clone();
        let mid = HEADER_LEN + FRAME_PROLOGUE_LEN + 10;
        flipped[mid] ^= 0x40;
        assert!(decode(&flipped).is_none(), "bit flip fails the checksum");
        let mut wrong_magic = good.clone();
        wrong_magic[0] ^= 0xff;
        assert!(decode(&wrong_magic).is_none());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_none(), "trailing garbage rejected");
        // A clite-store log is not a model file.
        assert!(decode(b"CLITESTO\x01\x00\x00\x00").is_none());
    }

    #[test]
    fn schema_drift_is_rejected() {
        let mut model = sample_model();
        model.feature_version = FEATURE_VERSION + 1;
        assert!(decode(&encode(&model)).is_none(), "future feature version");
        let mut short = sample_model();
        short.weights.pop();
        assert!(decode(&encode(&short)).is_none(), "dimension mismatch");
        let mut nan = sample_model();
        nan.weights[0] = f64::NAN;
        assert!(decode(&encode(&nan)).is_none(), "non-finite weights rejected");
    }

    #[test]
    fn save_load_round_trips_and_degrades() {
        let dir = std::env::temp_dir().join(format!("clite-learn-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.clite");
        let model = sample_model();
        save(&path, &model).unwrap();
        assert_eq!(load(&path).unwrap(), model);

        // Corrupt the file on disk: load_or_zeroed degrades to zero.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (fallback, err) = load_or_zeroed(&path);
        assert!(fallback.is_zero());
        assert!(matches!(err, Some(ModelError::Corrupt)));

        // Missing file: same degradation, io error reported.
        let (fallback, err) = load_or_zeroed(&dir.join("absent.clite"));
        assert!(fallback.is_zero());
        assert!(matches!(err, Some(ModelError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
