//! Equivalence properties for the surrogate fast paths introduced for the
//! per-`suggest()` hot loop:
//!
//! * a rank-1-extended GP must agree with a from-scratch fit to 1e-9 on
//!   posterior mean/std and log marginal likelihood, across random input
//!   spaces and observation orders;
//! * the threaded hyper-grid scan must be byte-identical to the serial one;
//! * the scratch-buffer prediction path must be byte-identical to the
//!   allocating one;
//! * the shared-distance Gram assembly must match the direct one.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_gp::gp::{GaussianProcess, GpConfig, PredictScratch};
use clite_gp::hyper::{fit_best, fit_best_threaded, HyperGrid};
use clite_gp::kernel::{squared_distances, Kernel};

/// Deterministic random training set: `n` points in `dim` dimensions on
/// the unit cube with a smooth-ish target, from `seed`.
fn random_data(seed: u64, n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            let s: f64 = x.iter().sum();
            (s * 2.0).sin() * 0.3 + s / dim as f64 * 0.4 + rng.gen_range(-0.05..0.05)
        })
        .collect();
    (xs, ys)
}

/// Shuffles index order deterministically (Fisher–Yates) so properties
/// cover many observation orders, not just the generation order.
fn shuffled_indices(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151_5151);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Growing a GP one observation at a time through `extended` stays
    /// within 1e-9 of a from-scratch fit at every step, for every random
    /// space, size, and observation order.
    #[test]
    fn incremental_matches_scratch_fit(
        seed in 0u64..1_000_000,
        n in 4usize..14,
        dim in 1usize..6,
    ) {
        let (xs, ys) = random_data(seed, n, dim);
        let order = shuffled_indices(seed, n);
        let kernel = Kernel::matern52(0.05, 0.5);
        let config = GpConfig { noise_variance: 1e-4 };

        // Seed the incremental chain with the first 3 observations.
        let mut cur_xs: Vec<Vec<f64>> = order[..3].iter().map(|&i| xs[i].clone()).collect();
        let mut cur_ys: Vec<f64> = order[..3].iter().map(|&i| ys[i]).collect();
        let mut inc = GaussianProcess::fit(
            kernel.clone(), config, cur_xs.clone(), cur_ys.clone(),
        ).unwrap();

        for &i in &order[3..] {
            inc = inc.extended(xs[i].clone(), ys[i]).unwrap();
            cur_xs.push(xs[i].clone());
            cur_ys.push(ys[i]);
            let full = GaussianProcess::fit(
                kernel.clone(), config, cur_xs.clone(), cur_ys.clone(),
            ).unwrap();

            prop_assert!(
                (inc.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-9,
                "log-marginal drift at n={}: {} vs {}",
                cur_xs.len(), inc.log_marginal_likelihood(), full.log_marginal_likelihood()
            );
            // Probe the posterior at held-out points and at a training point.
            let mut probe_rng = StdRng::seed_from_u64(seed ^ 0x9e37);
            for _ in 0..4 {
                let q: Vec<f64> = (0..dim).map(|_| probe_rng.gen_range(-0.2..1.2)).collect();
                let (mi, si) = inc.predict_std(&q);
                let (mf, sf) = full.predict_std(&q);
                prop_assert!((mi - mf).abs() < 1e-9, "mean drift: {mi} vs {mf}");
                prop_assert!((si - sf).abs() < 1e-9, "std drift: {si} vs {sf}");
            }
            let (mi, si) = inc.predict_std(&cur_xs[0]);
            let (mf, sf) = full.predict_std(&cur_xs[0]);
            prop_assert!((mi - mf).abs() < 1e-9 && (si - sf).abs() < 1e-9);
        }
    }

    /// The threaded hyper-grid scan returns the byte-identical fit for any
    /// worker count.
    #[test]
    fn threaded_grid_byte_identical(
        seed in 0u64..1_000_000,
        n in 4usize..16,
        dim in 1usize..6,
        threads in 2usize..9,
    ) {
        let (xs, ys) = random_data(seed, n, dim);
        let grid = HyperGrid::default_unit();
        let template = Kernel::matern52(1.0, 1.0);
        let config = GpConfig::default();
        let serial = fit_best(&template, config, &grid, &xs, &ys).unwrap();
        let par = fit_best_threaded(&template, config, &grid, &xs, &ys, threads).unwrap();

        prop_assert_eq!(serial.kernel(), par.kernel());
        prop_assert_eq!(
            serial.log_marginal_likelihood().to_bits(),
            par.log_marginal_likelihood().to_bits()
        );
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0x517c);
        for _ in 0..4 {
            let q: Vec<f64> = (0..dim).map(|_| probe_rng.gen_range(0.0..1.0)).collect();
            let (ms, ss) = serial.predict_std(&q);
            let (mp, sp) = par.predict_std(&q);
            prop_assert_eq!(ms.to_bits(), mp.to_bits());
            prop_assert_eq!(ss.to_bits(), sp.to_bits());
        }
    }

    /// The scratch-buffer prediction path is byte-identical to the
    /// allocating one, including when the scratch is reused across queries
    /// of a long climb.
    #[test]
    fn predict_into_byte_identical(
        seed in 0u64..1_000_000,
        n in 3usize..12,
        dim in 1usize..6,
    ) {
        let (xs, ys) = random_data(seed, n, dim);
        let gp = GaussianProcess::fit(
            Kernel::matern52(0.05, 0.4), GpConfig::default(), xs, ys,
        ).unwrap();
        let mut scratch = PredictScratch::default();
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..16 {
            let q: Vec<f64> = (0..dim).map(|_| probe_rng.gen_range(-0.5..1.5)).collect();
            let (m0, v0) = gp.predict(&q);
            let (m1, v1) = gp.predict_into(&q, &mut scratch);
            prop_assert_eq!(m0.to_bits(), m1.to_bits());
            prop_assert_eq!(v0.to_bits(), v1.to_bits());
        }
    }

    /// Rebuilding the Gram matrix from shared unscaled distances matches
    /// the direct per-pair evaluation to tight tolerance for every grid
    /// kernel (they associate the lengthscale division differently, so
    /// bit-equality is not required — the grid scan uses one path
    /// consistently, which is what its determinism relies on).
    #[test]
    fn gram_from_distances_matches_gram(
        seed in 0u64..1_000_000,
        n in 2usize..12,
        dim in 1usize..6,
    ) {
        let (xs, _) = random_data(seed, n, dim);
        let d2 = squared_distances(&xs);
        for &(v, l) in &[(0.01, 0.2), (0.04, 0.8), (0.09, 3.2)] {
            let k = Kernel::matern52(v, l);
            let direct = k.gram(&xs);
            let shared = k.gram_from_distances(&d2);
            for i in 0..n {
                for j in 0..n {
                    prop_assert!(
                        (direct[(i, j)] - shared[(i, j)]).abs() < 1e-12,
                        "({i},{j}): {} vs {}", direct[(i, j)], shared[(i, j)]
                    );
                }
            }
        }
    }
}
