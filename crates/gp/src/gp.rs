//! Exact Gaussian-process regression.
//!
//! Given training pairs `(X, y)`, a kernel `k`, and observation-noise
//! variance `σ_n²`, the GP posterior at a query `x*` is
//!
//! ```text
//! μ(x*) = k(x*,X) · (K + σ_n²·I)⁻¹ · (y − m)        + m
//! σ²(x*) = k(x*,x*) − k(x*,X) · (K + σ_n²·I)⁻¹ · k(X,x*)
//! ```
//!
//! with `m` the empirical mean of `y` (a constant-mean GP). The fit keeps
//! the Cholesky factor of `K + σ_n²·I` so each prediction costs one
//! triangular solve — CLITE keeps sample counts small (tens of points)
//! specifically so this exact inference stays cheap (paper Sec. 4,
//! "mitigates this overhead by carefully limiting the number of sampled
//! data points").

use std::sync::Arc;

use crate::kernel::Kernel;
use crate::linalg::{dot, Cholesky, Matrix};
use crate::GpError;

/// Non-kernel GP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Observation-noise variance `σ_n²` added to the Gram diagonal.
    pub noise_variance: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self { noise_variance: 1e-4 }
    }
}

/// Telemetry-friendly summary of one GP fit: what was fitted, with which
/// hyper-parameters, and how well.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSummary {
    /// Number of training points.
    pub observations: usize,
    /// Input dimensionality.
    pub dim: usize,
    /// Kernel family name.
    pub family: &'static str,
    /// Kernel signal variance `σ²`.
    pub signal_variance: f64,
    /// Representative kernel lengthscale (geometric mean under ARD).
    pub lengthscale: f64,
    /// Log marginal likelihood of the fit.
    pub log_marginal: f64,
}

/// Reusable scratch buffers for [`GaussianProcess::predict_into`].
///
/// Acquisition maximization performs tens of thousands of predictions per
/// `suggest()`; routing them through one scratch value makes the hot path
/// allocation-free after the first call.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    k_star: Vec<f64>,
    v: Vec<f64>,
    scaled: Vec<f64>,
    r2: Vec<f64>,
}

/// Column-major (structure-of-arrays) storage of the lengthscale-scaled
/// training inputs: dimension `d` occupies the contiguous slice
/// `data[d·n .. (d+1)·n]`.
///
/// ```text
///            point:   0     1     2   …   n-1
/// data:  [ x₀/ℓ₀  x₁/ℓ₀  x₂/ℓ₀  …            ]  column 0 (dim 0)
///        [ x₀/ℓ₁  x₁/ℓ₁  x₂/ℓ₁  …            ]  column 1 (dim 1)
///        [   ⋮                                ]      ⋮
/// ```
///
/// The prediction hot paths accumulate squared distances dimension-by-
/// dimension over these flat columns, so every inner loop streams one
/// contiguous slice (auto-vectorizing) instead of chasing `n` separate
/// per-point `Vec`s. Per element, the accumulation order (dimensions
/// ascending) is exactly the old point-major loop's, so results are
/// bit-identical to the array-of-structs layout this replaced.
#[derive(Debug, Clone)]
struct ScaledColumns {
    n: usize,
    dim: usize,
    data: Vec<f64>,
}

impl ScaledColumns {
    /// Scales every training point through the kernel and scatters the
    /// results into column-major storage.
    fn build(kernel: &Kernel, xs: &[Vec<f64>]) -> Self {
        let n = xs.len();
        let dim = xs.first().map_or(0, Vec::len);
        let mut data = vec![0.0; n * dim];
        let mut scaled = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            kernel.scale_into(x, &mut scaled);
            for (d, &v) in scaled.iter().enumerate() {
                data[d * n + i] = v;
            }
        }
        Self { n, dim, data }
    }

    /// The contiguous column for dimension `d`.
    fn column(&self, d: usize) -> &[f64] {
        &self.data[d * self.n..(d + 1) * self.n]
    }

    /// A copy extended by one already-scaled point.
    fn extended(&self, scaled: &[f64]) -> Self {
        debug_assert_eq!(scaled.len(), self.dim);
        let n = self.n + 1;
        let mut data = Vec::with_capacity(n * self.dim);
        for (d, &v) in scaled.iter().enumerate() {
            data.extend_from_slice(self.column(d));
            data.push(v);
        }
        Self { n, dim: self.dim, data }
    }

    /// Writes the squared distance from the scaled query `q` to every
    /// training point into `r2`, one streaming pass per dimension.
    fn sq_dists_into(&self, q: &[f64], r2: &mut Vec<f64>) {
        debug_assert_eq!(q.len(), self.dim);
        r2.clear();
        r2.resize(self.n, 0.0);
        for (d, &qd) in q.iter().enumerate() {
            for (acc, &t) in r2.iter_mut().zip(self.column(d)) {
                let diff = qd - t;
                *acc += diff * diff;
            }
        }
    }
}

/// Posterior mean plus a cheap *upper bound* on the posterior standard
/// deviation, produced by [`GaussianProcess::gate_append`] without
/// the O(n²) triangular solve. Acquisition climbs use the bound to skip
/// the solve for candidates that provably cannot beat the incumbent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatedPrediction {
    /// Exact posterior mean.
    pub mean: f64,
    /// Upper bound on the posterior standard deviation (`std <= std_upper`
    /// always; equality is not approached in general).
    pub std_upper: f64,
}

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    config: GpConfig,
    xs: Arc<Vec<Vec<f64>>>,
    ys: Arc<Vec<f64>>,
    /// Training inputs pre-divided by the kernel lengthscales, stored
    /// column-major ([`ScaledColumns`]) so each prediction scales its query
    /// once and streams every cross-covariance over flat per-dimension
    /// slices with multiply/adds only.
    scaled_xs: ScaledColumns,
    /// Row sums of `K + σₙ²I` (all entries of a stationary kernel matrix
    /// are positive, so these are also the absolute row sums). Their max
    /// bounds `λ_max`, which powers the variance bound in
    /// [`GaussianProcess::gate_append`]; kept as a vector so
    /// [`GaussianProcess::extended`] can update them in O(n).
    row_sums: Vec<f64>,
    /// `max(row_sums)`, precomputed so the gate pays zero per-candidate
    /// reduction cost.
    inf_norm: f64,
    mean_y: f64,
    alpha: Vec<f64>,
    chol: Cholesky,
    log_marginal: f64,
}

fn validate(xs: &[Vec<f64>], ys: &[f64]) -> Result<usize, GpError> {
    if xs.is_empty() {
        return Err(GpError::EmptyTrainingSet);
    }
    if xs.len() != ys.len() {
        return Err(GpError::LengthMismatch { inputs: xs.len(), targets: ys.len() });
    }
    let dim = xs[0].len();
    for x in xs {
        if x.len() != dim {
            return Err(GpError::DimensionMismatch { expected: dim, actual: x.len() });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteValue);
        }
    }
    if ys.iter().any(|v| !v.is_finite()) {
        return Err(GpError::NonFiniteValue);
    }
    Ok(dim)
}

impl GaussianProcess {
    /// Fits an exact GP to `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::EmptyTrainingSet`], [`GpError::LengthMismatch`],
    /// [`GpError::DimensionMismatch`], or [`GpError::NonFiniteValue`] for
    /// malformed data, and [`GpError::NotPositiveDefinite`] if the kernel
    /// matrix cannot be factorized even with jitter.
    pub fn fit(
        kernel: Kernel,
        config: GpConfig,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
    ) -> Result<Self, GpError> {
        Self::fit_shared(kernel, config, Arc::new(xs), Arc::new(ys))
    }

    /// Like [`GaussianProcess::fit`] but shares the training data instead
    /// of owning a private copy — hyper-parameter grid search fits the same
    /// `(X, y)` under many kernels and should not clone it per candidate.
    ///
    /// # Errors
    ///
    /// Same contract as [`GaussianProcess::fit`].
    pub fn fit_shared(
        kernel: Kernel,
        config: GpConfig,
        xs: Arc<Vec<Vec<f64>>>,
        ys: Arc<Vec<f64>>,
    ) -> Result<Self, GpError> {
        validate(&xs, &ys)?;
        let gram = kernel.gram(&xs);
        Self::fit_with_gram(kernel, config, xs, ys, gram)
    }

    /// Fits from a precomputed noise-free Gram matrix `K = k(X, X)`. This
    /// is the shared-distance grid-search entry point: the caller builds
    /// `K` per grid point from one pairwise-distance matrix
    /// ([`Kernel::gram_from_distances`]) and this constructor only pays for
    /// the factorization.
    ///
    /// # Errors
    ///
    /// Same contract as [`GaussianProcess::fit`], plus
    /// [`GpError::ShapeMismatch`] if `gram` is not `n × n`.
    pub fn fit_with_gram(
        kernel: Kernel,
        config: GpConfig,
        xs: Arc<Vec<Vec<f64>>>,
        ys: Arc<Vec<f64>>,
        mut gram: Matrix,
    ) -> Result<Self, GpError> {
        validate(&xs, &ys)?;
        let n = xs.len();
        if gram.rows() != n || gram.cols() != n {
            return Err(GpError::ShapeMismatch { op: "fit_with_gram" });
        }

        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - mean_y).collect();

        gram.add_diagonal(config.noise_variance.max(0.0));
        let row_sums: Vec<f64> =
            (0..n).map(|i| (0..n).map(|j| gram[(i, j)]).sum::<f64>()).collect();
        let inf_norm = row_sums.iter().fold(0.0_f64, |m, &s| m.max(s));
        let chol = Cholesky::decompose(&gram)?;
        let alpha = chol.solve(&centered)?;
        let log_marginal = log_marginal(&centered, &alpha, &chol);
        let scaled_xs = ScaledColumns::build(&kernel, &xs);

        Ok(Self {
            kernel,
            config,
            xs,
            ys,
            scaled_xs,
            row_sums,
            inf_norm,
            mean_y,
            alpha,
            chol,
            log_marginal,
        })
    }

    /// Returns a new GP with one extra observation `(x, y)`, reusing this
    /// fit's Cholesky factor via a rank-1 border extension — O(n²) instead
    /// of the O(n³) from-scratch refactorization, which is what makes
    /// recording between hyper refreshes cheap. Falls back to a full refit
    /// (same kernel) if the extended factor is numerically not positive
    /// definite, so the result matches a from-scratch fit to working
    /// precision either way.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] / [`GpError::NonFiniteValue`]
    /// for malformed input and [`GpError::NotPositiveDefinite`] if even the
    /// fallback refit fails.
    pub fn extended(&self, x: Vec<f64>, y: f64) -> Result<Self, GpError> {
        if x.len() != self.dim() {
            return Err(GpError::DimensionMismatch { expected: self.dim(), actual: x.len() });
        }
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(GpError::NonFiniteValue);
        }

        let k = self.kernel.cross(&x, &self.xs);
        let diag = self.kernel.variance() + self.config.noise_variance.max(0.0);

        let mut xs: Vec<Vec<f64>> = Vec::clone(&self.xs);
        let mut ys: Vec<f64> = Vec::clone(&self.ys);
        xs.push(x);
        ys.push(y);
        let (xs, ys) = (Arc::new(xs), Arc::new(ys));

        let chol = match self.chol.extend(&k, diag) {
            Ok(c) => c,
            // The jitter ladder in `decompose` can rescue borderline cases
            // a fixed-jitter border extension cannot.
            Err(GpError::NotPositiveDefinite) => {
                return Self::fit_shared(self.kernel.clone(), self.config, xs, ys);
            }
            Err(e) => return Err(e),
        };

        // The empirical mean shifts with the new target, so α must be
        // re-solved against the extended factor — still O(n²).
        let n = ys.len();
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = ys.iter().map(|v| v - mean_y).collect();
        let alpha = chol.solve(&centered)?;
        let log_marginal = log_marginal(&centered, &alpha, &chol);

        let mut scaled = Vec::new();
        self.kernel.scale_into(xs.last().expect("just pushed"), &mut scaled);
        let scaled_xs = self.scaled_xs.extended(&scaled);

        // Bordering `K + σₙ²I` with the cross-covariance row updates every
        // row sum by one entry and appends the new row's own sum.
        let mut row_sums: Vec<f64> = self.row_sums.iter().zip(&k).map(|(s, ki)| s + ki).collect();
        row_sums.push(k.iter().sum::<f64>() + diag);
        let inf_norm = row_sums.iter().fold(0.0_f64, |m, &s| m.max(s));

        Ok(Self {
            kernel: self.kernel.clone(),
            config: self.config,
            xs,
            ys,
            scaled_xs,
            row_sums,
            inf_norm,
            mean_y,
            alpha,
            chol,
            log_marginal,
        })
    }

    /// Number of training points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the training set is empty (never true for a fitted GP).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Input dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The kernel used by this fit.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The configuration used by this fit.
    #[must_use]
    pub fn config(&self) -> GpConfig {
        self.config
    }

    /// The log marginal likelihood `log p(y | X, θ)` of this fit.
    #[must_use]
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// One-line summary of this fit for telemetry sinks.
    #[must_use]
    pub fn fit_summary(&self) -> FitSummary {
        FitSummary {
            observations: self.len(),
            dim: self.dim(),
            family: self.kernel.family().name(),
            signal_variance: self.kernel.variance(),
            lengthscale: self.kernel.mean_lengthscale(),
            log_marginal: self.log_marginal,
        }
    }

    /// Posterior predictive mean and variance at `x`.
    ///
    /// The variance is clamped at zero to absorb round-off. Allocates
    /// per call — hot paths should hold a [`PredictScratch`] and use
    /// [`GaussianProcess::predict_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        self.predict_into(x, &mut PredictScratch::default())
    }

    /// [`predict`](GaussianProcess::predict) through caller-owned scratch
    /// buffers: zero allocations once the scratch has warmed up, and the
    /// query is divided by the lengthscales once instead of once per
    /// training point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict_into(&self, x: &[f64], scratch: &mut PredictScratch) -> (f64, f64) {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        self.kernel.scale_into(x, &mut scratch.scaled);
        self.scaled_xs.sq_dists_into(&scratch.scaled, &mut scratch.r2);
        scratch.k_star.clear();
        self.kernel.eval_scaled_sq_append(&scratch.r2, &mut scratch.k_star);
        let mean = self.mean_y + dot(&scratch.k_star, &self.alpha);
        // v = L⁻¹ k*; σ² = k(x,x) − vᵀv, and k(x,x) is exactly σ² for a
        // stationary kernel (corr(0) = 1).
        self.chol
            .solve_lower_into(&scratch.k_star, &mut scratch.v)
            .expect("cross-covariance length matches training size");
        let var = self.kernel.variance() - dot(&scratch.v, &scratch.v);
        (mean, var.max(0.0))
    }

    /// Posterior mean and *standard deviation* at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    #[must_use]
    pub fn predict_std(&self, x: &[f64]) -> (f64, f64) {
        let (m, v) = self.predict(x);
        (m, v.sqrt())
    }

    /// [`predict_std`](GaussianProcess::predict_std) through caller-owned
    /// scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict_std_into(&self, x: &[f64], scratch: &mut PredictScratch) -> (f64, f64) {
        let (m, v) = self.predict_into(x, scratch);
        (m, v.sqrt())
    }

    /// Writes the squared scaled distance from `x` to every training point
    /// into `r2_out`, scaling `x` once through `scaled_out`. These are the
    /// inputs [`GaussianProcess::gate_append`] and
    /// [`GaussianProcess::shift_sq_dists`] operate on: a hill-climb
    /// computes them once per step for the current partition and derives
    /// each neighbor's vector with two-coordinate shifts.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn scaled_sq_dists_into(
        &self,
        x: &[f64],
        scaled_out: &mut Vec<f64>,
        r2_out: &mut Vec<f64>,
    ) {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        self.kernel.scale_into(x, scaled_out);
        self.scaled_xs.sq_dists_into(scaled_out, r2_out);
    }

    /// Derives a neighbor's squared-distance vector from `base` when the
    /// neighbor differs from the base query in exactly two scaled
    /// coordinates: each `(dim, old, new)` change replaces the `(old −
    /// xᵢ[dim])²` term with `(new − xᵢ[dim])²`. O(n) per neighbor instead
    /// of the O(n·d) of [`GaussianProcess::scaled_sq_dists_into`]. The
    /// result is clamped at zero to absorb cancellation round-off; the
    /// base is recomputed fresh each climb step, so error never
    /// accumulates across steps.
    pub fn shift_sq_dists(
        &self,
        base: &[f64],
        changes: [(usize, f64, f64); 2],
        out: &mut Vec<f64>,
    ) {
        // Two streaming column passes; per element this applies the first
        // change, then the second, then the clamp — the same operation
        // order as the old per-point loop, so the bits match.
        out.clear();
        out.extend_from_slice(base);
        let [(dim0, old0, new0), (dim1, old1, new1)] = changes;
        for (acc, &t) in out.iter_mut().zip(self.scaled_xs.column(dim0)) {
            let (d_old, d_new) = (old0 - t, new0 - t);
            *acc += d_new * d_new - d_old * d_old;
        }
        for (acc, &t) in out.iter_mut().zip(self.scaled_xs.column(dim1)) {
            let (d_old, d_new) = (old1 - t, new1 - t);
            *acc += d_new * d_new - d_old * d_old;
            *acc = acc.max(0.0);
        }
    }

    /// Exact posterior mean plus an upper bound on the posterior standard
    /// deviation, from a squared-distance vector — O(n), no triangular
    /// solve. The cross-covariance row `k*` computed along the way is
    /// **appended** to `k_star_all` (callers batch surviving candidates
    /// and resolve their exact variances together with
    /// [`GaussianProcess::batch_stds`]; a caller that discards this
    /// candidate truncates `k_star_all` back).
    ///
    /// The bound: `σ²(x) = σ² − vᵀv` with `v = L⁻¹k*`, and `vᵀv =
    /// k*ᵀ(K+σₙ²I)⁻¹k*` admits two cheap lower bounds — `‖k*‖² / λ_max`
    /// with `λ_max ≤ max_i Σ_j |K+σₙ²I|_ij` (row-sum bound; every entry of
    /// a stationary-kernel Gram matrix is positive), and `max_i k*ᵢ² /
    /// (σ²+σₙ²)` from Cauchy–Schwarz in the `(K+σₙ²I)⁻¹` inner product.
    /// Subtracting the larger from `σ²` upper-bounds the variance. Any
    /// factorization jitter is added to both denominators so the bound
    /// stays sound for rescued borderline fits.
    ///
    /// # Panics
    ///
    /// Panics if `r2.len()` differs from the number of training points.
    pub fn gate_append(&self, r2: &[f64], k_star_all: &mut Vec<f64>) -> GatedPrediction {
        assert_eq!(r2.len(), self.len(), "distance vector length mismatch");
        let start = k_star_all.len();
        self.kernel.eval_scaled_sq_append(r2, k_star_all);
        let k_star = &k_star_all[start..];
        let mean = self.mean_y + dot(k_star, &self.alpha);

        let (mut norm_sq, mut max_sq) = (0.0_f64, 0.0_f64);
        for &k in k_star {
            let k2 = k * k;
            norm_sq += k2;
            max_sq = max_sq.max(k2);
        }
        let jitter = self.chol.jitter();
        let inf_norm = self.inf_norm + jitter;
        let diag = self.kernel.variance() + self.config.noise_variance.max(0.0) + jitter;
        let vtv_lb = (norm_sq / inf_norm).max(max_sq / diag);
        let var_ub = self.kernel.variance() - vtv_lb;
        GatedPrediction { mean, std_upper: var_ub.max(0.0).sqrt() }
    }

    /// Exact posterior standard deviations for a batch of cross-covariance
    /// rows (`m` consecutive length-`n` rows in `k_star_all`, as built by
    /// [`GaussianProcess::gate_append`]), written to `stds` in order.
    ///
    /// One climb step resolves all its surviving neighbours here in a
    /// single blocked multi-RHS forward substitution
    /// ([`Cholesky::solve_lower_batch`]) — the per-candidate solve is
    /// latency-bound on its own dependency chain, while four-wide blocking
    /// runs four independent chains per pass. `v_all` is solver scratch.
    ///
    /// # Panics
    ///
    /// Panics if `k_star_all.len()` is not a multiple of the training size.
    pub fn batch_stds(&self, k_star_all: &[f64], v_all: &mut Vec<f64>, stds: &mut Vec<f64>) {
        self.chol
            .solve_lower_batch(k_star_all, v_all)
            .expect("cross-covariance batch length matches training size");
        self.stds_from_solves(v_all, stds);
    }

    /// [`batch_stds`](GaussianProcess::batch_stds) with the forward
    /// substitution chunked over up to `slots` partitions of the shared
    /// worker pool ([`Cholesky::solve_lower_batch_pooled`]) — byte-identical
    /// to the serial batch at any slot count, and falling back to it for
    /// batches too small to amortize a dispatch.
    ///
    /// # Panics
    ///
    /// Same contract as [`batch_stds`](GaussianProcess::batch_stds).
    pub fn batch_stds_pooled(
        &self,
        k_star_all: &[f64],
        v_all: &mut Vec<f64>,
        stds: &mut Vec<f64>,
        slots: usize,
    ) {
        self.chol
            .solve_lower_batch_pooled(k_star_all, v_all, slots)
            .expect("cross-covariance batch length matches training size");
        self.stds_from_solves(v_all, stds);
    }

    fn stds_from_solves(&self, v_all: &[f64], stds: &mut Vec<f64>) {
        let variance = self.kernel.variance();
        stds.clear();
        stds.extend(v_all.chunks_exact(self.len()).map(|v| (variance - dot(v, v)).max(0.0).sqrt()));
    }
}

/// `log p(y|X) = −½ yᵀα − ½ log|K| − (n/2) log 2π`.
fn log_marginal(centered: &[f64], alpha: &[f64], chol: &Cholesky) -> f64 {
    -0.5 * dot(centered, alpha)
        - 0.5 * chol.log_determinant()
        - 0.5 * centered.len() as f64 * (2.0 * std::f64::consts::PI).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i) / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 4.0).sin() + 0.5 * x[0]).collect();
        (xs, ys)
    }

    fn fit_toy() -> GaussianProcess {
        let (xs, ys) = toy_data();
        GaussianProcess::fit(Kernel::matern52(1.0, 0.3), GpConfig::default(), xs, ys).unwrap()
    }

    #[test]
    fn interpolates_training_points() {
        let gp = fit_toy();
        let (xs, ys) = toy_data();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs target {y}");
            assert!(v < 0.01, "variance should be tiny at training points, got {v}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = fit_toy();
        let (_, v_in) = gp.predict(&[0.5]);
        let (_, v_out) = gp.predict(&[3.0]);
        assert!(v_out > 10.0 * v_in.max(1e-9));
        // Far from data the posterior reverts to the prior variance.
        assert!((v_out - 1.0).abs() < 0.1);
    }

    #[test]
    fn predictions_are_finite_and_variance_nonnegative() {
        let gp = fit_toy();
        for i in 0..50 {
            let x = [f64::from(i) / 10.0 - 2.0];
            let (m, v) = gp.predict(&x);
            assert!(m.is_finite());
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn errors_on_malformed_input() {
        let k = Kernel::matern52(1.0, 1.0);
        let cfg = GpConfig::default();
        assert_eq!(
            GaussianProcess::fit(k.clone(), cfg, vec![], vec![]).unwrap_err(),
            GpError::EmptyTrainingSet
        );
        assert!(matches!(
            GaussianProcess::fit(k.clone(), cfg, vec![vec![0.0]], vec![1.0, 2.0]).unwrap_err(),
            GpError::LengthMismatch { .. }
        ));
        assert!(matches!(
            GaussianProcess::fit(k.clone(), cfg, vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0])
                .unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
        assert_eq!(
            GaussianProcess::fit(k, cfg, vec![vec![f64::NAN]], vec![1.0]).unwrap_err(),
            GpError::NonFiniteValue
        );
    }

    #[test]
    fn duplicate_points_survive_via_noise() {
        // Two identical inputs with different targets: the noise term keeps
        // the Gram matrix invertible.
        let xs = vec![vec![0.5], vec![0.5], vec![0.9]];
        let ys = vec![1.0, 1.2, 0.0];
        let gp = GaussianProcess::fit(
            Kernel::matern52(1.0, 0.2),
            GpConfig { noise_variance: 1e-2 },
            xs,
            ys,
        )
        .unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!(m > 0.8 && m < 1.3, "mean near the duplicate targets, got {m}");
    }

    #[test]
    fn log_marginal_prefers_good_lengthscale() {
        let (xs, ys) = toy_data();
        let good = GaussianProcess::fit(
            Kernel::matern52(1.0, 0.3),
            GpConfig::default(),
            xs.clone(),
            ys.clone(),
        )
        .unwrap();
        let bad =
            GaussianProcess::fit(Kernel::matern52(1.0, 1e4), GpConfig::default(), xs, ys).unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn predict_into_matches_predict_and_reuses_buffers() {
        let gp = fit_toy();
        let mut scratch = PredictScratch::default();
        for i in 0..20 {
            let x = [f64::from(i) / 10.0 - 0.5];
            let (m0, v0) = gp.predict(&x);
            let (m1, v1) = gp.predict_into(&x, &mut scratch);
            assert_eq!(m0.to_bits(), m1.to_bits());
            assert_eq!(v0.to_bits(), v1.to_bits());
        }
    }

    #[test]
    fn extended_matches_from_scratch_fit() {
        let (xs, ys) = toy_data();
        let base = GaussianProcess::fit(
            Kernel::matern52(1.0, 0.3),
            GpConfig::default(),
            xs[..9].to_vec(),
            ys[..9].to_vec(),
        )
        .unwrap();
        let inc = base.extended(xs[9].clone(), ys[9]).unwrap();
        let full =
            GaussianProcess::fit(Kernel::matern52(1.0, 0.3), GpConfig::default(), xs, ys).unwrap();
        assert_eq!(inc.len(), full.len());
        assert!(
            (inc.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-9,
            "log-marginal drift: {} vs {}",
            inc.log_marginal_likelihood(),
            full.log_marginal_likelihood()
        );
        for i in 0..30 {
            let x = [f64::from(i) / 29.0 * 2.0 - 0.5];
            let (mi, vi) = inc.predict(&x);
            let (mf, vf) = full.predict(&x);
            assert!((mi - mf).abs() < 1e-9, "mean drift at {x:?}: {mi} vs {mf}");
            assert!((vi - vf).abs() < 1e-9, "variance drift at {x:?}: {vi} vs {vf}");
        }
    }

    #[test]
    fn extended_rejects_malformed_points() {
        let gp = fit_toy();
        assert!(matches!(
            gp.extended(vec![0.1, 0.2], 0.5).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
        assert_eq!(gp.extended(vec![f64::NAN], 0.5).unwrap_err(), GpError::NonFiniteValue);
        assert_eq!(gp.extended(vec![0.1], f64::INFINITY).unwrap_err(), GpError::NonFiniteValue);
    }

    #[test]
    fn extended_duplicate_point_falls_back_to_refit() {
        // An exact duplicate of a training point makes the bordered matrix
        // singular at the base fit's (zero) jitter, so `extended` must fall
        // back to the full decompose-with-jitter path and still succeed.
        let xs = vec![vec![0.1], vec![0.5], vec![0.9]];
        let ys = vec![0.3, 0.7, 0.2];
        let gp = GaussianProcess::fit(
            Kernel::matern52(1.0, 0.4),
            GpConfig { noise_variance: 0.0 },
            xs,
            ys,
        )
        .unwrap();
        let inc = gp.extended(vec![0.5], 0.7).unwrap();
        assert_eq!(inc.len(), 4);
        let (m, _) = inc.predict(&[0.5]);
        assert!(m.is_finite());
    }

    #[test]
    fn higher_dimensional_inputs() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = f64::from(i) / 19.0;
                vec![t, 1.0 - t, (t * 7.0).fract()]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1] + 0.3 * x[2]).collect();
        let gp =
            GaussianProcess::fit(Kernel::matern52(1.0, 0.5), GpConfig::default(), xs, ys).unwrap();
        assert_eq!(gp.dim(), 3);
        let (m, _) = gp.predict(&[0.5, 0.5, 0.5]);
        assert!((m - 0.4).abs() < 0.15);
    }
}
