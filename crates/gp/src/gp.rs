//! Exact Gaussian-process regression.
//!
//! Given training pairs `(X, y)`, a kernel `k`, and observation-noise
//! variance `σ_n²`, the GP posterior at a query `x*` is
//!
//! ```text
//! μ(x*) = k(x*,X) · (K + σ_n²·I)⁻¹ · (y − m)        + m
//! σ²(x*) = k(x*,x*) − k(x*,X) · (K + σ_n²·I)⁻¹ · k(X,x*)
//! ```
//!
//! with `m` the empirical mean of `y` (a constant-mean GP). The fit keeps
//! the Cholesky factor of `K + σ_n²·I` so each prediction costs one
//! triangular solve — CLITE keeps sample counts small (tens of points)
//! specifically so this exact inference stays cheap (paper Sec. 4,
//! "mitigates this overhead by carefully limiting the number of sampled
//! data points").

use crate::kernel::Kernel;
use crate::linalg::{dot, Cholesky};
use crate::GpError;

/// Non-kernel GP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Observation-noise variance `σ_n²` added to the Gram diagonal.
    pub noise_variance: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self { noise_variance: 1e-4 }
    }
}

/// Telemetry-friendly summary of one GP fit: what was fitted, with which
/// hyper-parameters, and how well.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSummary {
    /// Number of training points.
    pub observations: usize,
    /// Input dimensionality.
    pub dim: usize,
    /// Kernel family name.
    pub family: &'static str,
    /// Kernel signal variance `σ²`.
    pub signal_variance: f64,
    /// Representative kernel lengthscale (geometric mean under ARD).
    pub lengthscale: f64,
    /// Log marginal likelihood of the fit.
    pub log_marginal: f64,
}

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    config: GpConfig,
    xs: Vec<Vec<f64>>,
    mean_y: f64,
    alpha: Vec<f64>,
    chol: Cholesky,
    log_marginal: f64,
}

impl GaussianProcess {
    /// Fits an exact GP to `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::EmptyTrainingSet`], [`GpError::LengthMismatch`],
    /// [`GpError::DimensionMismatch`], or [`GpError::NonFiniteValue`] for
    /// malformed data, and [`GpError::NotPositiveDefinite`] if the kernel
    /// matrix cannot be factorized even with jitter.
    pub fn fit(
        kernel: Kernel,
        config: GpConfig,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
    ) -> Result<Self, GpError> {
        if xs.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(GpError::LengthMismatch { inputs: xs.len(), targets: ys.len() });
        }
        let dim = xs[0].len();
        for x in &xs {
            if x.len() != dim {
                return Err(GpError::DimensionMismatch { expected: dim, actual: x.len() });
            }
            if x.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFiniteValue);
            }
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteValue);
        }

        let n = xs.len();
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - mean_y).collect();

        let mut k = kernel.gram(&xs);
        k.add_diagonal(config.noise_variance.max(0.0));
        let chol = Cholesky::decompose(&k)?;
        let alpha = chol.solve(&centered)?;

        // log p(y|X) = −½ yᵀα − ½ log|K| − (n/2) log 2π
        let log_marginal = -0.5 * dot(&centered, &alpha)
            - 0.5 * chol.log_determinant()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(Self { kernel, config, xs, mean_y, alpha, chol, log_marginal })
    }

    /// Number of training points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the training set is empty (never true for a fitted GP).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Input dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The kernel used by this fit.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The configuration used by this fit.
    #[must_use]
    pub fn config(&self) -> GpConfig {
        self.config
    }

    /// The log marginal likelihood `log p(y | X, θ)` of this fit.
    #[must_use]
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// One-line summary of this fit for telemetry sinks.
    #[must_use]
    pub fn fit_summary(&self) -> FitSummary {
        FitSummary {
            observations: self.len(),
            dim: self.dim(),
            family: self.kernel.family().name(),
            signal_variance: self.kernel.variance(),
            lengthscale: self.kernel.mean_lengthscale(),
            log_marginal: self.log_marginal,
        }
    }

    /// Posterior predictive mean and variance at `x`.
    ///
    /// The variance is clamped at zero to absorb round-off.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let k_star = self.kernel.cross(x, &self.xs);
        let mean = self.mean_y + dot(&k_star, &self.alpha);
        // v = L⁻¹ k*; σ² = k(x,x) − vᵀv.
        let v =
            self.chol.solve_lower(&k_star).expect("cross-covariance length matches training size");
        let var = self.kernel.eval(x, x) - dot(&v, &v);
        (mean, var.max(0.0))
    }

    /// Posterior mean and *standard deviation* at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    #[must_use]
    pub fn predict_std(&self, x: &[f64]) -> (f64, f64) {
        let (m, v) = self.predict(x);
        (m, v.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i) / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 4.0).sin() + 0.5 * x[0]).collect();
        (xs, ys)
    }

    fn fit_toy() -> GaussianProcess {
        let (xs, ys) = toy_data();
        GaussianProcess::fit(Kernel::matern52(1.0, 0.3), GpConfig::default(), xs, ys).unwrap()
    }

    #[test]
    fn interpolates_training_points() {
        let gp = fit_toy();
        let (xs, ys) = toy_data();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs target {y}");
            assert!(v < 0.01, "variance should be tiny at training points, got {v}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = fit_toy();
        let (_, v_in) = gp.predict(&[0.5]);
        let (_, v_out) = gp.predict(&[3.0]);
        assert!(v_out > 10.0 * v_in.max(1e-9));
        // Far from data the posterior reverts to the prior variance.
        assert!((v_out - 1.0).abs() < 0.1);
    }

    #[test]
    fn predictions_are_finite_and_variance_nonnegative() {
        let gp = fit_toy();
        for i in 0..50 {
            let x = [f64::from(i) / 10.0 - 2.0];
            let (m, v) = gp.predict(&x);
            assert!(m.is_finite());
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn errors_on_malformed_input() {
        let k = Kernel::matern52(1.0, 1.0);
        let cfg = GpConfig::default();
        assert_eq!(
            GaussianProcess::fit(k.clone(), cfg, vec![], vec![]).unwrap_err(),
            GpError::EmptyTrainingSet
        );
        assert!(matches!(
            GaussianProcess::fit(k.clone(), cfg, vec![vec![0.0]], vec![1.0, 2.0]).unwrap_err(),
            GpError::LengthMismatch { .. }
        ));
        assert!(matches!(
            GaussianProcess::fit(k.clone(), cfg, vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0])
                .unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
        assert_eq!(
            GaussianProcess::fit(k, cfg, vec![vec![f64::NAN]], vec![1.0]).unwrap_err(),
            GpError::NonFiniteValue
        );
    }

    #[test]
    fn duplicate_points_survive_via_noise() {
        // Two identical inputs with different targets: the noise term keeps
        // the Gram matrix invertible.
        let xs = vec![vec![0.5], vec![0.5], vec![0.9]];
        let ys = vec![1.0, 1.2, 0.0];
        let gp = GaussianProcess::fit(
            Kernel::matern52(1.0, 0.2),
            GpConfig { noise_variance: 1e-2 },
            xs,
            ys,
        )
        .unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!(m > 0.8 && m < 1.3, "mean near the duplicate targets, got {m}");
    }

    #[test]
    fn log_marginal_prefers_good_lengthscale() {
        let (xs, ys) = toy_data();
        let good = GaussianProcess::fit(
            Kernel::matern52(1.0, 0.3),
            GpConfig::default(),
            xs.clone(),
            ys.clone(),
        )
        .unwrap();
        let bad =
            GaussianProcess::fit(Kernel::matern52(1.0, 1e4), GpConfig::default(), xs, ys).unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn higher_dimensional_inputs() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = f64::from(i) / 19.0;
                vec![t, 1.0 - t, (t * 7.0).fract()]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1] + 0.3 * x[2]).collect();
        let gp =
            GaussianProcess::fit(Kernel::matern52(1.0, 0.5), GpConfig::default(), xs, ys).unwrap();
        assert_eq!(gp.dim(), 3);
        let (m, _) = gp.predict(&[0.5, 0.5, 0.5]);
        assert!((m - 0.4).abs() < 0.15);
    }
}
