//! Standard-normal density and distribution functions.
//!
//! Expected Improvement (paper Eq. 2) needs the standard normal CDF `Ω(z)`
//! and PDF `ω(z)`. The CDF is computed from an `erf` implementation
//! (Abramowitz & Stegun 7.1.26, |error| ≤ 1.5e-7, plus symmetry), which is
//! plenty for acquisition ranking.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Error function `erf(x)` via the Abramowitz & Stegun 7.1.26 rational
/// approximation (absolute error below `1.5e-7`).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal probability density `ω(z)`.
#[must_use]
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution `Ω(z)`.
#[must_use]
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z * FRAC_1_SQRT_2))
}

/// Arithmetic mean of a slice (`0.0` for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice (`0.0` for fewer than two
/// elements).
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of strictly positive values (`0.0` if any value is ≤ 0,
/// `1.0` for an empty slice). The paper's score function (Eq. 3) is built
/// on geometric means of per-job ratios.
#[must_use]
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // erf(0)=0, erf(1)≈0.8427007929, erf(2)≈0.9953222650.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 2e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12, "odd symmetry");
    }

    #[test]
    fn cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn pdf_symmetry_and_peak() {
        assert!((norm_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((norm_pdf(1.3) - norm_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn cdf_monotone() {
        let mut last = 0.0;
        for i in -40..=40 {
            let c = norm_cdf(f64::from(i) * 0.1);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn summary_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_properties() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -2.0]), 0.0);
    }
}
