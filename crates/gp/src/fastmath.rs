//! Auto-vectorizable transcendental kernels for the GP hot paths.
//!
//! `libm`'s `exp` is accurate to <1 ulp but is an opaque scalar call, so a
//! loop that evaluates a covariance row stays scalar and the row cost is
//! dominated by the `exp` latency. [`fast_exp`] trades the last two digits
//! (relative error ≤ ~3e-13 — far below the GP's observation-noise floor
//! and the factorization jitter) for a branch-free body of multiplies,
//! adds, and bit manipulation that LLVM vectorizes on the baseline x86-64
//! target. Covariance-row loops built on it run several elements per cycle
//! instead of one `exp` call per element.

/// `exp(x)` with relative error ≤ ~3e-13 on the kernels' operating range,
/// written so a loop over a slice auto-vectorizes.
///
/// Standard range reduction: `exp(x) = 2^k · exp(r)` with
/// `k = round(x/ln 2)` and `|r| ≤ (ln 2)/2`, where `exp(r)` is a
/// degree-10 Horner polynomial. The rounding uses the `1.5·2^52` magic
/// constant (adding it forces the sum into a binade whose ulp is 1, so the
/// rounded integer sits in the low mantissa bits) instead of
/// `f64::round`/`as i64`, which do not vectorize on the baseline target.
/// `ln 2` is split into a high/low pair so `x − k·ln 2` stays exact.
///
/// Inputs below `-700` return `0.0` exactly (the true value is `< 1e-304`;
/// the bit trick's exponent arithmetic would wrap there). Inputs above
/// `+700` are outside the supported range (kernels only ever pass
/// non-positive arguments) and saturate like the lower edge clamps: the
/// caller must not rely on them.
#[inline]
#[must_use]
pub fn fast_exp(x: f64) -> f64 {
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52

    let t = x * LOG2E + MAGIC;
    let kf = t - MAGIC;
    // Low mantissa bits of `t` hold `k` (offset by 2^51, which vanishes
    // under the `<< 52`); adding the exponent bias and shifting into the
    // exponent field builds `2^k` without an int↔float conversion.
    let scale = f64::from_bits(t.to_bits().wrapping_add(1023) << 52);

    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    #[rustfmt::skip]
    let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0
        + r * (1.0 / 120.0 + r * (1.0 / 720.0 + r * (1.0 / 5_040.0
        + r * (1.0 / 40_320.0 + r * (1.0 / 362_880.0
        + r * (1.0 / 3_628_800.0))))))))));

    if x < -700.0 {
        0.0
    } else {
        scale * p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_over_kernel_range() {
        // Kernel arguments are `-√5·r`, `-√3·r`, or `-r²/2` with `r` a
        // scaled distance — always non-positive, rarely below ~-300.
        let mut max_rel = 0.0_f64;
        for i in 0..=600_000 {
            let x = -(i as f64) * 1e-3; // [-600, 0]
            let exact = x.exp();
            let fast = fast_exp(x);
            let rel = if exact == 0.0 { fast.abs() } else { ((fast - exact) / exact).abs() };
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 3e-13, "max relative error {max_rel:e}");
    }

    #[test]
    fn exact_at_zero() {
        assert_eq!(fast_exp(0.0), 1.0);
    }

    #[test]
    fn deep_negative_underflows_to_zero() {
        assert_eq!(fast_exp(-701.0), 0.0);
        assert_eq!(fast_exp(-1e6), 0.0);
    }

    #[test]
    fn moderate_positive_still_accurate() {
        // Not used by the kernels, but `log`-domain helpers may pass small
        // positive values.
        for i in 0..=1_000 {
            let x = i as f64 * 1e-2; // [0, 10]
            let rel = ((fast_exp(x) - x.exp()) / x.exp()).abs();
            assert!(rel < 3e-13, "x={x}: rel {rel:e}");
        }
    }
}
