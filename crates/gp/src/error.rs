use std::fmt;

/// Error type for Gaussian-process construction and fitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Inputs and targets had different lengths.
    LengthMismatch {
        /// Number of input points.
        inputs: usize,
        /// Number of targets.
        targets: usize,
    },
    /// Input points had inconsistent dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first point.
        expected: usize,
        /// Dimensionality of the offending point.
        actual: usize,
    },
    /// A target or input value was not finite.
    NonFiniteValue,
    /// The kernel matrix was not positive definite even after the jitter
    /// ladder was exhausted.
    NotPositiveDefinite,
    /// A matrix operation was attempted with incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "training set is empty"),
            GpError::LengthMismatch { inputs, targets } => {
                write!(f, "{inputs} input points but {targets} targets")
            }
            GpError::DimensionMismatch { expected, actual } => {
                write!(f, "input point has dimension {actual}, expected {expected}")
            }
            GpError::NonFiniteValue => write!(f, "non-finite value in training data"),
            GpError::NotPositiveDefinite => {
                write!(f, "kernel matrix not positive definite after jitter ladder")
            }
            GpError::ShapeMismatch { op } => write!(f, "incompatible matrix shapes in {op}"),
        }
    }
}

impl std::error::Error for GpError {}
