//! Derivative-free hyperparameter selection.
//!
//! A time-constrained online controller cannot afford gradient-based
//! marginal-likelihood optimization on every sample, so CLITE's surrogate
//! refreshes its kernel hyperparameters by scanning a small log-spaced grid
//! of (signal variance, lengthscale) pairs and keeping the fit with the
//! highest log marginal likelihood. With tens of training points this costs
//! a handful of small Cholesky factorizations per refresh.

use std::sync::Arc;

use clite_par::{map_indexed, WorkerPool};

use crate::gp::{GaussianProcess, GpConfig};
use crate::kernel::{squared_distances, Kernel};
use crate::GpError;

/// Hyperparameter search grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperGrid {
    /// Candidate signal variances.
    pub variances: Vec<f64>,
    /// Candidate isotropic lengthscales.
    pub lengthscales: Vec<f64>,
}

impl HyperGrid {
    /// Default grid tuned for inputs normalized to the unit hypercube and
    /// scores in `[0, 1]`: variances `{0.01, 0.04, 0.09}`, lengthscales
    /// `{0.2, 0.4, 0.8, 1.6, 3.2}`. The variance cap keeps prior
    /// uncertainty in never-visited corners of a huge space from propping
    /// up the acquisition forever (which would defeat EI-based
    /// termination); the long lengthscales matter in 15–30-dimensional
    /// partition spaces, where pairwise distances concentrate around 1 and
    /// a short-lengthscale GP degenerates into white noise.
    #[must_use]
    pub fn default_unit() -> Self {
        Self { variances: vec![0.01, 0.04, 0.09], lengthscales: vec![0.2, 0.4, 0.8, 1.6, 3.2] }
    }

    /// Number of candidate fits the grid will try.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variances.len() * self.lengthscales.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variances.is_empty() || self.lengthscales.is_empty()
    }
}

impl Default for HyperGrid {
    fn default() -> Self {
        Self::default_unit()
    }
}

/// Fits a GP for every grid point and returns the fit with the highest log
/// marginal likelihood. Grid points whose Gram matrix cannot be factorized
/// are skipped.
///
/// Equivalent to [`fit_best_threaded`] with one worker; the training data
/// is shared across grid points (one `Arc`, one pairwise-distance matrix)
/// rather than cloned per candidate.
///
/// # Errors
///
/// Returns the last fitting error if *no* grid point produced a valid fit,
/// or the underlying data-validation error for malformed inputs.
pub fn fit_best(
    template: &Kernel,
    config: GpConfig,
    grid: &HyperGrid,
    xs: &[Vec<f64>],
    ys: &[f64],
) -> Result<GaussianProcess, GpError> {
    fit_best_threaded(template, config, grid, xs, ys, 1)
}

/// [`fit_best`] with the independent grid-point fits spread over up to
/// `threads` slots of the shared [`clite_par`] worker pool (no per-call
/// thread spawns).
///
/// Every grid point reparameterizes one shared pairwise squared-distance
/// matrix ([`squared_distances`] + [`Kernel::gram_from_distances`]): an
/// isotropic kernel only rescales distances, so the O(n²·d) geometry is
/// paid once per refresh and each candidate costs O(n²) Gram assembly plus
/// its factorization.
///
/// The result is byte-identical to the serial scan for any `threads`:
/// each grid point's fit is a pure function of `(kernel, distances, data)`,
/// slots are striped by grid index ([`map_indexed`] merges results back in
/// grid order), and the reduction keeps the first strictly-better fit —
/// exactly the serial loop's tie-breaking.
///
/// # Errors
///
/// Same contract as [`fit_best`].
pub fn fit_best_threaded(
    template: &Kernel,
    config: GpConfig,
    grid: &HyperGrid,
    xs: &[Vec<f64>],
    ys: &[f64],
    threads: usize,
) -> Result<GaussianProcess, GpError> {
    if xs.is_empty() {
        return Err(GpError::EmptyTrainingSet);
    }
    let points: Vec<(f64, f64)> = grid
        .variances
        .iter()
        .flat_map(|&v| grid.lengthscales.iter().map(move |&l| (v, l)))
        .collect();
    if points.is_empty() {
        return Err(GpError::EmptyTrainingSet);
    }

    let xs = Arc::new(xs.to_vec());
    let ys = Arc::new(ys.to_vec());
    let d2 = squared_distances(&xs);

    // When the caller asks for more parallelism than there are grid points,
    // spend the surplus inside each fit: nested dispatch tiles the Gram
    // build across whatever pool workers the outer stripes leave idle.
    let gram_slots = threads.max(1).div_ceil(points.len());
    let fit_point = |&(v, l): &(f64, f64)| -> Result<GaussianProcess, GpError> {
        // `reparameterized` always yields an isotropic kernel, which is
        // what `gram_from_distances` requires.
        let kernel = template.reparameterized(v, l);
        let gram = kernel.gram_from_distances_pooled(&d2, gram_slots);
        GaussianProcess::fit_with_gram(kernel, config, Arc::clone(&xs), Arc::clone(&ys), gram)
    };

    let fits: Vec<Result<GaussianProcess, GpError>> =
        map_indexed(WorkerPool::global(), threads, &points, || (), |(), _, p| fit_point(p));

    let mut best: Option<GaussianProcess> = None;
    let mut last_err = GpError::EmptyTrainingSet;
    for fit in fits {
        match fit {
            Ok(gp) => {
                let better = best
                    .as_ref()
                    .is_none_or(|b| gp.log_marginal_likelihood() > b.log_marginal_likelihood());
                if better {
                    best = Some(gp);
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_a_reasonable_lengthscale() {
        // Smooth slow function: the best lengthscale should not be the
        // smallest one on the grid.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i) / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let grid = HyperGrid::default_unit();
        let gp =
            fit_best(&Kernel::matern52(1.0, 1.0), GpConfig::default(), &grid, &xs, &ys).unwrap();
        // The selected fit must beat the worst grid candidate.
        let worst =
            GaussianProcess::fit(Kernel::matern52(0.01, 0.1), GpConfig::default(), xs, ys).unwrap();
        assert!(gp.log_marginal_likelihood() >= worst.log_marginal_likelihood());
    }

    #[test]
    fn empty_data_propagates_error() {
        let grid = HyperGrid::default_unit();
        let err = fit_best(&Kernel::matern52(1.0, 1.0), GpConfig::default(), &grid, &[], &[]);
        assert!(err.is_err());
    }

    #[test]
    fn threaded_scan_is_byte_identical_to_serial() {
        let xs: Vec<Vec<f64>> = (0..14)
            .map(|i| {
                let t = f64::from(i) / 13.0;
                vec![t, (t * 3.0).fract(), 1.0 - t]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 0.6 + x[1] * x[2]).collect();
        let grid = HyperGrid::default_unit();
        let template = Kernel::matern52(1.0, 1.0);
        let serial = fit_best(&template, GpConfig::default(), &grid, &xs, &ys).unwrap();
        for threads in [1, 2, 4, 8, 16] {
            let par = fit_best_threaded(&template, GpConfig::default(), &grid, &xs, &ys, threads)
                .unwrap();
            assert_eq!(
                serial.log_marginal_likelihood().to_bits(),
                par.log_marginal_likelihood().to_bits()
            );
            assert_eq!(serial.kernel(), par.kernel());
        }
    }

    #[test]
    fn grid_size() {
        let g = HyperGrid::default_unit();
        assert_eq!(g.len(), 15);
        assert!(!g.is_empty());
        let empty = HyperGrid { variances: vec![], lengthscales: vec![1.0] };
        assert!(empty.is_empty());
    }
}
