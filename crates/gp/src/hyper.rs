//! Derivative-free hyperparameter selection.
//!
//! A time-constrained online controller cannot afford gradient-based
//! marginal-likelihood optimization on every sample, so CLITE's surrogate
//! refreshes its kernel hyperparameters by scanning a small log-spaced grid
//! of (signal variance, lengthscale) pairs and keeping the fit with the
//! highest log marginal likelihood. With tens of training points this costs
//! a handful of small Cholesky factorizations per refresh.

use crate::gp::{GaussianProcess, GpConfig};
use crate::kernel::Kernel;
use crate::GpError;

/// Hyperparameter search grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperGrid {
    /// Candidate signal variances.
    pub variances: Vec<f64>,
    /// Candidate isotropic lengthscales.
    pub lengthscales: Vec<f64>,
}

impl HyperGrid {
    /// Default grid tuned for inputs normalized to the unit hypercube and
    /// scores in `[0, 1]`: variances `{0.01, 0.04, 0.09}`, lengthscales
    /// `{0.2, 0.4, 0.8, 1.6, 3.2}`. The variance cap keeps prior
    /// uncertainty in never-visited corners of a huge space from propping
    /// up the acquisition forever (which would defeat EI-based
    /// termination); the long lengthscales matter in 15–30-dimensional
    /// partition spaces, where pairwise distances concentrate around 1 and
    /// a short-lengthscale GP degenerates into white noise.
    #[must_use]
    pub fn default_unit() -> Self {
        Self { variances: vec![0.01, 0.04, 0.09], lengthscales: vec![0.2, 0.4, 0.8, 1.6, 3.2] }
    }

    /// Number of candidate fits the grid will try.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variances.len() * self.lengthscales.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variances.is_empty() || self.lengthscales.is_empty()
    }
}

impl Default for HyperGrid {
    fn default() -> Self {
        Self::default_unit()
    }
}

/// Fits a GP for every grid point and returns the fit with the highest log
/// marginal likelihood. Grid points whose Gram matrix cannot be factorized
/// are skipped.
///
/// # Errors
///
/// Returns the last fitting error if *no* grid point produced a valid fit,
/// or the underlying data-validation error for malformed inputs.
pub fn fit_best(
    template: &Kernel,
    config: GpConfig,
    grid: &HyperGrid,
    xs: &[Vec<f64>],
    ys: &[f64],
) -> Result<GaussianProcess, GpError> {
    let mut best: Option<GaussianProcess> = None;
    let mut last_err = GpError::EmptyTrainingSet;
    for &v in &grid.variances {
        for &l in &grid.lengthscales {
            let kernel = template.reparameterized(v, l);
            match GaussianProcess::fit(kernel, config, xs.to_vec(), ys.to_vec()) {
                Ok(gp) => {
                    let better = best
                        .as_ref()
                        .is_none_or(|b| gp.log_marginal_likelihood() > b.log_marginal_likelihood());
                    if better {
                        best = Some(gp);
                    }
                }
                Err(e) => last_err = e,
            }
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_a_reasonable_lengthscale() {
        // Smooth slow function: the best lengthscale should not be the
        // smallest one on the grid.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i) / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let grid = HyperGrid::default_unit();
        let gp =
            fit_best(&Kernel::matern52(1.0, 1.0), GpConfig::default(), &grid, &xs, &ys).unwrap();
        // The selected fit must beat the worst grid candidate.
        let worst =
            GaussianProcess::fit(Kernel::matern52(0.01, 0.1), GpConfig::default(), xs, ys).unwrap();
        assert!(gp.log_marginal_likelihood() >= worst.log_marginal_likelihood());
    }

    #[test]
    fn empty_data_propagates_error() {
        let grid = HyperGrid::default_unit();
        let err = fit_best(&Kernel::matern52(1.0, 1.0), GpConfig::default(), &grid, &[], &[]);
        assert!(err.is_err());
    }

    #[test]
    fn grid_size() {
        let g = HyperGrid::default_unit();
        assert_eq!(g.len(), 15);
        assert!(!g.is_empty());
        let empty = HyperGrid { variances: vec![], lengthscales: vec![1.0] };
        assert!(empty.is_empty());
    }
}
