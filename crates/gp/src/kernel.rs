//! Covariance kernels.
//!
//! The paper chooses the **Matérn** covariance kernel because it "does not
//! require restrictions on strong smoothness" (Sec. 4) — CLITE's score
//! surface has a kink at the QoS boundary (the two modes of Eq. 3), so an
//! infinitely smooth squared-exponential prior is a worse fit. Matérn 5/2
//! is the default; Matérn 3/2 and squared-exponential are provided for the
//! kernel-choice ablation.

use crate::fastmath::fast_exp;
use crate::linalg::Matrix;

/// Which covariance family a [`Kernel`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// Matérn ν = 5/2 (twice differentiable) — the paper's choice.
    Matern52,
    /// Matérn ν = 3/2 (once differentiable).
    Matern32,
    /// Squared exponential (infinitely smooth).
    SquaredExponential,
}

impl KernelFamily {
    /// Short lower-case name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelFamily::Matern52 => "matern52",
            KernelFamily::Matern32 => "matern32",
            KernelFamily::SquaredExponential => "sqexp",
        }
    }
}

/// A stationary covariance kernel with signal variance and lengthscales.
///
/// Lengthscales are either isotropic (one scale for all input dimensions)
/// or ARD (one per dimension).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    family: KernelFamily,
    variance: f64,
    lengthscales: LengthScales,
}

#[derive(Debug, Clone, PartialEq)]
enum LengthScales {
    Isotropic(f64),
    Ard(Vec<f64>),
}

impl Kernel {
    /// Matérn 5/2 kernel with isotropic lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `variance` or `lengthscale` is not positive.
    #[must_use]
    pub fn matern52(variance: f64, lengthscale: f64) -> Self {
        Self::new(KernelFamily::Matern52, variance, lengthscale)
    }

    /// Matérn 3/2 kernel with isotropic lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `variance` or `lengthscale` is not positive.
    #[must_use]
    pub fn matern32(variance: f64, lengthscale: f64) -> Self {
        Self::new(KernelFamily::Matern32, variance, lengthscale)
    }

    /// Squared-exponential kernel with isotropic lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `variance` or `lengthscale` is not positive.
    #[must_use]
    pub fn squared_exponential(variance: f64, lengthscale: f64) -> Self {
        Self::new(KernelFamily::SquaredExponential, variance, lengthscale)
    }

    /// Kernel of any family with an isotropic lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `variance` or `lengthscale` is not positive.
    #[must_use]
    pub fn new(family: KernelFamily, variance: f64, lengthscale: f64) -> Self {
        assert!(variance > 0.0, "kernel variance must be positive");
        assert!(lengthscale > 0.0, "kernel lengthscale must be positive");
        Self { family, variance, lengthscales: LengthScales::Isotropic(lengthscale) }
    }

    /// Kernel with per-dimension (ARD) lengthscales.
    ///
    /// # Panics
    ///
    /// Panics if `variance` is not positive or any lengthscale is not
    /// positive.
    #[must_use]
    pub fn with_ard(family: KernelFamily, variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(variance > 0.0, "kernel variance must be positive");
        assert!(
            !lengthscales.is_empty() && lengthscales.iter().all(|&l| l > 0.0),
            "ARD lengthscales must be positive"
        );
        Self { family, variance, lengthscales: LengthScales::Ard(lengthscales) }
    }

    /// The kernel family.
    #[must_use]
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Signal variance `σ²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Representative lengthscale: the isotropic value, or the geometric
    /// mean of the ARD lengthscales. Used by telemetry to summarize a
    /// fitted kernel in one number.
    #[must_use]
    pub fn mean_lengthscale(&self) -> f64 {
        match &self.lengthscales {
            LengthScales::Isotropic(l) => *l,
            LengthScales::Ard(ls) => {
                let log_sum: f64 = ls.iter().map(|l| l.ln()).sum();
                (log_sum / ls.len() as f64).exp()
            }
        }
    }

    /// Returns a copy with a different variance and isotropic lengthscale
    /// (used by grid hyperparameter search).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    #[must_use]
    pub fn reparameterized(&self, variance: f64, lengthscale: f64) -> Self {
        Self::new(self.family, variance, lengthscale)
    }

    /// Scaled distance `r = sqrt(Σ ((x_d − y_d)/ℓ_d)²)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` and `y` have different lengths, or if ARD
    /// lengthscales do not match the input dimension.
    #[must_use]
    pub fn scaled_distance(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let mut r2 = 0.0;
        match &self.lengthscales {
            LengthScales::Isotropic(l) => {
                for (a, b) in x.iter().zip(y) {
                    let d = (a - b) / l;
                    r2 += d * d;
                }
            }
            LengthScales::Ard(ls) => {
                debug_assert_eq!(ls.len(), x.len());
                for ((a, b), l) in x.iter().zip(y).zip(ls) {
                    let d = (a - b) / l;
                    r2 += d * d;
                }
            }
        }
        r2.sqrt()
    }

    /// Correlation at scaled distance `r` (so that `k = σ² · corr(r)`).
    ///
    /// Uses [`fast_exp`] (relative error ≤ ~3e-13, orders of magnitude
    /// below the noise floor) so that the batched row evaluation in
    /// [`Kernel::eval_scaled_sq_append`] — which inlines the same
    /// arithmetic — vectorizes, and scalar and batched evaluations agree
    /// bit for bit.
    fn correlation(&self, r: f64) -> f64 {
        match self.family {
            KernelFamily::Matern52 => {
                let s = 5.0_f64.sqrt() * r;
                (1.0 + s + s * s / 3.0) * fast_exp(-s)
            }
            KernelFamily::Matern32 => {
                let s = 3.0_f64.sqrt() * r;
                (1.0 + s) * fast_exp(-s)
            }
            KernelFamily::SquaredExponential => fast_exp(-0.5 * r * r),
        }
    }

    /// Covariance `k(x, y)`.
    #[must_use]
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.variance * self.correlation(self.scaled_distance(x, y))
    }

    /// Covariance from a *pre-scaled* squared distance (the squared
    /// Euclidean distance between points already divided by the
    /// lengthscales, see [`Kernel::scale_into`]). The prediction hot path
    /// scales its query once and then evaluates every training covariance
    /// with multiplies only — no per-pair divisions.
    #[must_use]
    pub fn eval_scaled_sq(&self, r2: f64) -> f64 {
        self.variance * self.correlation(r2.sqrt())
    }

    /// Appends `k(x*, xᵢ)` for a whole row of pre-scaled squared distances
    /// to `out` — bit-identical to mapping [`Kernel::eval_scaled_sq`] over
    /// `r2`, but with the family match hoisted out of the loop so the
    /// branch-free per-element body ([`fast_exp`] + a few multiplies)
    /// auto-vectorizes. The acquisition climb evaluates one such row per
    /// candidate, which makes this the single hottest loop in a `suggest`.
    pub fn eval_scaled_sq_append(&self, r2: &[f64], out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + r2.len(), 0.0);
        let dst = &mut out[start..];
        match self.family {
            KernelFamily::Matern52 => {
                for (o, &d) in dst.iter_mut().zip(r2) {
                    let s = 5.0_f64.sqrt() * d.sqrt();
                    *o = self.variance * ((1.0 + s + s * s / 3.0) * fast_exp(-s));
                }
            }
            KernelFamily::Matern32 => {
                for (o, &d) in dst.iter_mut().zip(r2) {
                    let s = 3.0_f64.sqrt() * d.sqrt();
                    *o = self.variance * ((1.0 + s) * fast_exp(-s));
                }
            }
            KernelFamily::SquaredExponential => {
                for (o, &d) in dst.iter_mut().zip(r2) {
                    // `sqrt` then square, not `-0.5 * d` directly: keeps
                    // the promised bit-identity with the scalar path.
                    let r = d.sqrt();
                    *o = self.variance * fast_exp(-0.5 * r * r);
                }
            }
        }
    }

    /// Writes `x` divided element-wise by the lengthscales into `out`.
    /// Distances between pre-scaled points equal [`Kernel::scaled_distance`]
    /// up to rounding.
    ///
    /// # Panics
    ///
    /// Panics (debug) if ARD lengthscales do not match `x.len()`.
    pub fn scale_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        match &self.lengthscales {
            LengthScales::Isotropic(l) => {
                let inv = 1.0 / l;
                out.extend(x.iter().map(|v| v * inv));
            }
            LengthScales::Ard(ls) => {
                debug_assert_eq!(ls.len(), x.len());
                out.extend(x.iter().zip(ls).map(|(v, l)| v / l));
            }
        }
    }

    /// Divides a single coordinate by its lengthscale — the scalar
    /// counterpart of [`Kernel::scale_into`], for callers that shift one
    /// or two coordinates of an already-scaled query (incremental
    /// distance updates during a hill-climb).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `dim` is out of range for ARD lengthscales.
    #[must_use]
    pub fn scaled_coord(&self, dim: usize, v: f64) -> f64 {
        match &self.lengthscales {
            // `v * (1/l)`, not `v / l`: bit-identical to what
            // [`Kernel::scale_into`] produced for the same coordinate.
            LengthScales::Isotropic(l) => v * (1.0 / l),
            LengthScales::Ard(ls) => {
                debug_assert!(dim < ls.len());
                v / ls[dim]
            }
        }
    }

    /// The full kernel (Gram) matrix over a set of points.
    #[must_use]
    pub fn gram(&self, xs: &[Vec<f64>]) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.eval(&xs[i], &xs[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// The Gram matrix from a precomputed *unscaled* squared-distance
    /// matrix (see [`squared_distances`]). Reparameterizing an isotropic
    /// kernel only rescales distances, so a hyper-parameter grid scan can
    /// pay the O(n²·d) geometry once and rebuild the Gram per grid point in
    /// O(n²) — this is the shared-distance fast path `fit_best` uses.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has ARD lengthscales (they change the metric
    /// itself, not just its scale) or if `d2` is not square.
    #[must_use]
    pub fn gram_from_distances(&self, d2: &Matrix) -> Matrix {
        let LengthScales::Isotropic(l) = &self.lengthscales else {
            panic!("gram_from_distances requires an isotropic kernel");
        };
        assert_eq!(d2.rows(), d2.cols(), "distance matrix must be square");
        let inv = 1.0 / l;
        let n = d2.rows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            k[(i, i)] = self.variance;
            for j in 0..i {
                let v = self.variance * self.correlation(d2[(i, j)].sqrt() * inv);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// [`Kernel::gram_from_distances`] with the lower-triangle rows tiled
    /// over up to `slots` partitions of the shared worker pool (the upper
    /// triangle is mirrored serially afterwards — O(n²) copies against the
    /// O(n²) transcendental evaluations the tiles parallelize).
    ///
    /// Byte-identical to the serial builder at any slot count: every entry
    /// is an independent pure function of `(variance, lengthscale,
    /// d2[(i,j)])`, and each row is written by exactly one slot. Matrices
    /// too small to amortize a dispatch (fewer than
    /// [`Kernel::POOLED_MIN_GRAM_ROWS`] rows per slot) fall back to the
    /// serial builder.
    ///
    /// # Panics
    ///
    /// Same contract as [`Kernel::gram_from_distances`].
    #[must_use]
    pub fn gram_from_distances_pooled(&self, d2: &Matrix, slots: usize) -> Matrix {
        let LengthScales::Isotropic(l) = &self.lengthscales else {
            panic!("gram_from_distances requires an isotropic kernel");
        };
        assert_eq!(d2.rows(), d2.cols(), "distance matrix must be square");
        let n = d2.rows();
        let width = slots.max(1).min(n / Self::POOLED_MIN_GRAM_ROWS);
        if width <= 1 {
            return self.gram_from_distances(d2);
        }
        let inv = 1.0 / l;
        let mut k = Matrix::zeros(n, n);
        // One chunk per row: striping rows balances the triangle's uneven
        // row lengths across slots (each stripe sums to ~n²/2W entries).
        clite_par::for_each_chunk_mut(
            clite_par::WorkerPool::global(),
            width,
            k.as_mut_slice(),
            n,
            |i, row| {
                row[i] = self.variance;
                let d2_row = &d2.row(i)[..i];
                for (out, &d) in row[..i].iter_mut().zip(d2_row) {
                    *out = self.variance * self.correlation(d.sqrt() * inv);
                }
            },
        );
        for i in 0..n {
            for j in 0..i {
                k[(j, i)] = k[(i, j)];
            }
        }
        k
    }

    /// Minimum rows per slot for [`Kernel::gram_from_distances_pooled`] to
    /// fan out; smaller Gram matrices build faster serially than the
    /// dispatch costs.
    pub const POOLED_MIN_GRAM_ROWS: usize = 16;

    /// The cross-covariance vector `k(x*, X)` of a query point against the
    /// training points.
    #[must_use]
    pub fn cross(&self, x_star: &[f64], xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.eval(x_star, x)).collect()
    }
}

/// Pairwise *unscaled* squared Euclidean distances `‖x_i − x_j‖²` of a
/// point set, shared by every [`Kernel::gram_from_distances`] call of a
/// hyper-parameter grid scan.
///
/// # Panics
///
/// Panics if `xs` is empty (callers validate training data first).
#[must_use]
pub fn squared_distances(xs: &[Vec<f64>]) -> Matrix {
    let n = xs.len();
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..i {
            let mut sum = 0.0;
            for (a, b) in xs[i].iter().zip(&xs[j]) {
                let d = a - b;
                sum += d * d;
            }
            d2[(i, j)] = sum;
            d2[(j, i)] = sum;
        }
    }
    d2
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAMILIES: [KernelFamily; 3] =
        [KernelFamily::Matern52, KernelFamily::Matern32, KernelFamily::SquaredExponential];

    #[test]
    fn self_covariance_is_variance() {
        for f in FAMILIES {
            let k = Kernel::new(f, 2.5, 0.7);
            assert!((k.eval(&[0.3, 0.4], &[0.3, 0.4]) - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_and_decaying() {
        for f in FAMILIES {
            let k = Kernel::new(f, 1.0, 0.5);
            let a = [0.0, 0.0];
            let b = [0.4, 0.1];
            let c = [1.0, 1.0];
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
            assert!(k.eval(&a, &b) > k.eval(&a, &c), "covariance must decay with distance");
            assert!(k.eval(&a, &c) > 0.0);
        }
    }

    #[test]
    fn matern52_less_smooth_than_sqexp_near_origin() {
        // At small r, SE stays closer to σ² than Matérn (it is flatter).
        let m = Kernel::matern52(1.0, 1.0);
        let s = Kernel::squared_exponential(1.0, 1.0);
        let x = [0.0];
        let y = [0.1];
        assert!(m.eval(&x, &y) < s.eval(&x, &y));
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        let k = Kernel::with_ard(KernelFamily::Matern52, 1.0, vec![0.1, 10.0]);
        // Moving along the short-lengthscale dimension decays covariance
        // far faster than along the long one.
        let o = [0.0, 0.0];
        assert!(k.eval(&o, &[0.2, 0.0]) < k.eval(&o, &[0.0, 0.2]));
    }

    #[test]
    fn gram_is_symmetric_with_variance_diagonal() {
        let k = Kernel::matern52(1.3, 0.4);
        let xs = vec![vec![0.0, 0.1], vec![0.5, 0.5], vec![0.9, 0.2]];
        let g = k.gram(&xs);
        for i in 0..3 {
            assert!((g[(i, i)] - 1.3).abs() < 1e-12);
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn pooled_gram_is_byte_identical_to_serial() {
        // n = 40 engages the pooled path for slots >= 2 (40 / 16 = 2).
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = f64::from(i) / 39.0;
                vec![t, (t * 5.0).fract(), 1.0 - t]
            })
            .collect();
        let d2 = squared_distances(&xs);
        for f in FAMILIES {
            let k = Kernel::new(f, 0.8, 0.45);
            let serial = k.gram_from_distances(&d2);
            for slots in [1usize, 2, 4, 8] {
                let pooled = k.gram_from_distances_pooled(&d2, slots);
                for i in 0..40 {
                    for j in 0..40 {
                        assert_eq!(
                            serial[(i, j)].to_bits(),
                            pooled[(i, j)].to_bits(),
                            "family={f:?} slots={slots} entry ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn zero_variance_panics() {
        let _ = Kernel::matern52(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "lengthscale must be positive")]
    fn zero_lengthscale_panics() {
        let _ = Kernel::matern52(1.0, 0.0);
    }

    #[test]
    fn family_names() {
        assert_eq!(KernelFamily::Matern52.name(), "matern52");
        assert_eq!(KernelFamily::Matern32.name(), "matern32");
        assert_eq!(KernelFamily::SquaredExponential.name(), "sqexp");
    }
}
