//! Minimal dense linear algebra: just enough for exact GP regression.
//!
//! A GP fit needs a symmetric positive-definite kernel matrix `K`, its
//! Cholesky factor `L` (with a jitter ladder for numerically borderline
//! matrices), triangular solves, and a handful of vector helpers. Keeping
//! this in-crate avoids a heavyweight linear-algebra dependency and keeps
//! the numerical path auditable.

use crate::GpError;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix filled by `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `x.len() != cols`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, GpError> {
        if x.len() != self.cols {
            return Err(GpError::ShapeMismatch { op: "mul_vec" });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Adds `value` to every diagonal element (in place).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Row `i` as a contiguous slice (the storage is row-major).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major storage as one mutable slice, for the pool-tiled
    /// builders that fill disjoint row ranges in place.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix (`A = L·Lᵀ`).
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 if none).
    jitter: f64,
}

impl Cholesky {
    /// Factorizes `a`, retrying with exponentially growing diagonal jitter
    /// (`1e-10 · mean-diagonal` up to `1e-2 · mean-diagonal`) if the matrix
    /// is numerically semi-definite — standard practice for GP kernel
    /// matrices built from near-duplicate points.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] for a non-square input and
    /// [`GpError::NotPositiveDefinite`] if the jitter ladder is exhausted.
    pub fn decompose(a: &Matrix) -> Result<Self, GpError> {
        if a.rows != a.cols {
            return Err(GpError::ShapeMismatch { op: "cholesky" });
        }
        let n = a.rows;
        let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64;
        let base = if mean_diag > 0.0 { mean_diag } else { 1.0 };

        if let Some(l) = try_factor(a, 0.0) {
            return Ok(Self { l, jitter: 0.0 });
        }
        let mut jitter = 1e-10 * base;
        while jitter <= 1e-2 * base {
            if let Some(l) = try_factor(a, jitter) {
                return Ok(Self { l, jitter });
            }
            jitter *= 10.0;
        }
        Err(GpError::NotPositiveDefinite)
    }

    /// The lower-triangular factor.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter added during factorization (0.0 for well-conditioned
    /// inputs).
    #[must_use]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Solves `L·y = b` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix order.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, GpError> {
        let mut y = Vec::new();
        self.solve_lower_into(b, &mut y)?;
        Ok(y)
    }

    /// [`solve_lower`](Cholesky::solve_lower) into a caller-provided buffer
    /// — the allocation-free twin for prediction hot paths that perform
    /// thousands of solves per search iteration.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix order.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) -> Result<(), GpError> {
        let n = self.l.rows;
        if b.len() != n {
            return Err(GpError::ShapeMismatch { op: "solve_lower" });
        }
        y.clear();
        y.resize(n, 0.0);
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * y[j];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(())
    }

    /// Solves `L·V = B` for many right-hand sides at once: `rhs` holds `m`
    /// consecutive length-`n` vectors, and the `m` solutions are written to
    /// `out` in the same layout.
    ///
    /// A single forward substitution is latency-bound — each row's
    /// accumulation is one serial dependency chain. This batched form
    /// processes four right-hand sides per pass, held *interleaved* in a
    /// scratch block (`blk[4j..4j+4]` is element `j` of the four partial
    /// solutions) so the inner loop reads one contiguous four-lane vector
    /// per matrix entry and the compiler vectorizes the four chains; the
    /// block is scattered back to the flat layout afterwards. Diagonal
    /// divisions become multiplies by precomputed reciprocals.
    /// Per-solution results can therefore differ from
    /// [`Cholesky::solve_lower_into`] in the last ulp; batch results do
    /// not depend on `m` or on how the batch is split into blocks of four
    /// (each solution only ever reads its own lane).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `rhs.len()` is not a multiple
    /// of the matrix order.
    pub fn solve_lower_batch(&self, rhs: &[f64], out: &mut Vec<f64>) -> Result<(), GpError> {
        let n = self.l.rows;
        if !rhs.len().is_multiple_of(n) {
            return Err(GpError::ShapeMismatch { op: "solve_lower_batch" });
        }
        out.clear();
        out.resize(rhs.len(), 0.0);
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / self.l[(i, i)]).collect();
        self.solve_lower_batch_core(&inv_diag, rhs, out);
        Ok(())
    }

    /// The blocked forward-substitution kernel shared by the serial and
    /// pooled batch solvers: full 4-wide blocks first, scalar tail after.
    /// Operates on pre-shaped slices so pool slots can run it directly on
    /// disjoint chunks of one output buffer.
    fn solve_lower_batch_core(&self, inv_diag: &[f64], rhs: &[f64], out: &mut [f64]) {
        let n = self.l.rows;
        let m = rhs.len() / n;
        let mut blk = vec![0.0_f64; 4 * n];

        let mut c = 0;
        while c + 4 <= m {
            let b = &rhs[c * n..(c + 4) * n];
            for i in 0..n {
                let row = &self.l.row(i)[..i];
                let mut acc = [b[i], b[n + i], b[2 * n + i], b[3 * n + i]];
                for (&lij, vj) in row.iter().zip(blk.chunks_exact(4)) {
                    acc[0] -= lij * vj[0];
                    acc[1] -= lij * vj[1];
                    acc[2] -= lij * vj[2];
                    acc[3] -= lij * vj[3];
                }
                let d = inv_diag[i];
                blk[4 * i] = acc[0] * d;
                blk[4 * i + 1] = acc[1] * d;
                blk[4 * i + 2] = acc[2] * d;
                blk[4 * i + 3] = acc[3] * d;
            }
            let v = &mut out[c * n..(c + 4) * n];
            for i in 0..n {
                v[i] = blk[4 * i];
                v[n + i] = blk[4 * i + 1];
                v[2 * n + i] = blk[4 * i + 2];
                v[3 * n + i] = blk[4 * i + 3];
            }
            c += 4;
        }
        while c < m {
            let b = &rhs[c * n..(c + 1) * n];
            let v = &mut out[c * n..(c + 1) * n];
            for i in 0..n {
                let row = &self.l.row(i)[..i];
                let mut a = b[i];
                for (j, &lij) in row.iter().enumerate() {
                    a -= lij * v[j];
                }
                v[i] = a * inv_diag[i];
            }
            c += 1;
        }
    }

    /// [`solve_lower_batch`](Cholesky::solve_lower_batch) with the
    /// right-hand sides chunked over up to `slots` partitions of the
    /// shared worker pool, so one climb step's multi-RHS solve scales past
    /// the four lanes a single 4-wide block pass uses.
    ///
    /// Byte-identical to the serial batch solve at any slot count: chunk
    /// boundaries are multiples of four right-hand sides, so every chunk's
    /// internal 4-wide blocks — and the final chunk's scalar tail — are
    /// exactly the blocks the serial solver would form, and each solution
    /// only ever reads its own lane. Batches too small to amortize a
    /// dispatch (fewer than [`Cholesky::POOLED_MIN_RHS`] right-hand sides
    /// per slot) fall back to the serial path.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `rhs.len()` is not a multiple
    /// of the matrix order.
    pub fn solve_lower_batch_pooled(
        &self,
        rhs: &[f64],
        out: &mut Vec<f64>,
        slots: usize,
    ) -> Result<(), GpError> {
        let n = self.l.rows;
        if !rhs.len().is_multiple_of(n) {
            return Err(GpError::ShapeMismatch { op: "solve_lower_batch" });
        }
        let m = rhs.len() / n;
        let width = slots.max(1).min(m / Self::POOLED_MIN_RHS);
        if width <= 1 {
            return self.solve_lower_batch(rhs, out);
        }
        out.clear();
        out.resize(rhs.len(), 0.0);
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / self.l[(i, i)]).collect();
        // Per-chunk RHS count, rounded up to a multiple of 4 so chunk
        // boundaries coincide with the serial solver's block boundaries.
        let per_chunk = m.div_ceil(width).div_ceil(4) * 4;
        clite_par::for_each_chunk_mut(
            clite_par::WorkerPool::global(),
            width,
            out,
            per_chunk * n,
            |chunk_idx, out_chunk| {
                let start = chunk_idx * per_chunk * n;
                self.solve_lower_batch_core(
                    &inv_diag,
                    &rhs[start..start + out_chunk.len()],
                    out_chunk,
                );
            },
        );
        Ok(())
    }

    /// Minimum right-hand sides per slot for
    /// [`Cholesky::solve_lower_batch_pooled`] to fan out; below
    /// `slots × POOLED_MIN_RHS` total, a dispatch costs more than the
    /// lanes it adds.
    pub const POOLED_MIN_RHS: usize = 16;

    /// Solves `Lᵀ·x = b` (backward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix order.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>, GpError> {
        let n = self.l.rows;
        if b.len() != n {
            return Err(GpError::ShapeMismatch { op: "solve_upper" });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·x = b` where `A = L·Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, GpError> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// `log|A| = 2·Σ log L_ii`, needed by the log marginal likelihood.
    #[must_use]
    pub fn log_determinant(&self) -> f64 {
        (0..self.l.rows).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Extends the factor of an `n × n` matrix `A` to the factor of the
    /// bordered matrix `[[A, k], [kᵀ, diag]]` in O(n²): one forward
    /// substitution for the new off-diagonal row plus a triangle copy,
    /// instead of refactorizing from scratch in O(n³). This is what makes
    /// recording one new observation between GP hyper refreshes cheap.
    ///
    /// The new row follows the same recurrence `decompose` uses, so at
    /// equal jitter an extended factor is bit-identical to a from-scratch
    /// one; the factor's jitter is applied to `diag` too, keeping the
    /// extension consistent with the original factorization.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::ShapeMismatch`] if `k.len()` differs from the
    /// factor order, and [`GpError::NotPositiveDefinite`] if the bordered
    /// matrix is numerically not positive definite — callers should then
    /// fall back to [`Cholesky::decompose`], whose jitter ladder can retry.
    pub fn extend(&self, k: &[f64], diag: f64) -> Result<Self, GpError> {
        let n = self.l.rows;
        if k.len() != n {
            return Err(GpError::ShapeMismatch { op: "cholesky extend" });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        // L·l₁₂ = k, in `try_factor`'s exact operation order.
        for j in 0..n {
            let mut sum = k[j];
            for t in 0..j {
                sum -= l[(n, t)] * l[(j, t)];
            }
            l[(n, j)] = sum / l[(j, j)];
        }
        let mut s = diag + self.jitter;
        for t in 0..n {
            s -= l[(n, t)] * l[(n, t)];
        }
        if s <= 0.0 || !s.is_finite() {
            return Err(GpError::NotPositiveDefinite);
        }
        l[(n, n)] = s.sqrt();
        Ok(Self { l, jitter: self.jitter })
    }
}

fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
    let n = a.rows;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)] + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics (debug) if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B·Bᵀ + I for a fixed B is SPD.
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 * 0.1 + 1.0);
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        assert_eq!(c.jitter(), 0.0);
        let l = c.l();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_inverts() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = c.solve(&b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn log_determinant_matches_identity() {
        let c = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        assert!(c.log_determinant().abs() < 1e-12);
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: xxᵀ with x = (1,1): singular, needs jitter.
        let mut a = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                a[(i, j)] = 1.0;
            }
        }
        let c = Cholesky::decompose(&a).unwrap();
        assert!(c.jitter() > 0.0);
    }

    #[test]
    fn hopeless_matrix_errors() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = -5.0;
        a[(1, 1)] = -5.0;
        assert_eq!(Cholesky::decompose(&a).unwrap_err(), GpError::NotPositiveDefinite);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::decompose(&a), Err(GpError::ShapeMismatch { .. })));
    }

    #[test]
    fn mul_vec_shape_checked() {
        let a = Matrix::identity(3);
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
        assert_eq!(a.mul_vec(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn solve_lower_into_matches_solve_lower() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let b = vec![0.3, -1.0, 2.5];
        let owned = c.solve_lower(&b).unwrap();
        let mut buf = vec![9.0; 7]; // stale contents and wrong length
        c.solve_lower_into(&b, &mut buf).unwrap();
        assert_eq!(owned, buf);
        assert!(c.solve_lower_into(&[1.0], &mut buf).is_err());
    }

    #[test]
    fn pooled_batch_solve_is_byte_identical_to_serial() {
        // Large SPD matrix so several chunk widths actually engage the
        // pooled path (m must exceed POOLED_MIN_RHS per slot).
        let n = 12;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.07 + 0.3);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        a.add_diagonal(1.0);
        let c = Cholesky::decompose(&a).unwrap();

        for m in [1usize, 3, 16, 33, 64, 130] {
            let rhs: Vec<f64> =
                (0..m * n).map(|i| ((i * 7919 % 1000) as f64).mul_add(1e-3, -0.5)).collect();
            let mut serial = Vec::new();
            c.solve_lower_batch(&rhs, &mut serial).unwrap();
            for slots in [1usize, 2, 4, 8] {
                let mut pooled = Vec::new();
                c.solve_lower_batch_pooled(&rhs, &mut pooled, slots).unwrap();
                assert_eq!(serial.len(), pooled.len());
                for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "m={m} slots={slots} diverged at element {i}"
                    );
                }
            }
        }
        // Shape errors propagate the same way as the serial solver's.
        let mut out = Vec::new();
        assert!(c.solve_lower_batch_pooled(&vec![0.0; n + 1], &mut out, 4).is_err());
    }

    #[test]
    fn extend_matches_from_scratch_factor() {
        // Border spd3 with a row that keeps the matrix SPD.
        let a3 = spd3();
        let mut a4 = Matrix::zeros(4, 4);
        for i in 0..3 {
            for j in 0..3 {
                a4[(i, j)] = a3[(i, j)];
            }
        }
        let k = [0.5, 0.2, -0.1];
        for (i, v) in k.iter().enumerate() {
            a4[(i, 3)] = *v;
            a4[(3, i)] = *v;
        }
        a4[(3, 3)] = 2.0;

        let base = Cholesky::decompose(&a3).unwrap();
        let extended = base.extend(&k, 2.0).unwrap();
        let scratch = Cholesky::decompose(&a4).unwrap();
        assert_eq!(scratch.jitter(), 0.0);
        for i in 0..4 {
            for j in 0..=i {
                assert_eq!(
                    extended.l()[(i, j)].to_bits(),
                    scratch.l()[(i, j)].to_bits(),
                    "({i},{j}) must be bit-identical at zero jitter"
                );
            }
        }
    }

    #[test]
    fn extend_rejects_bad_shapes_and_indefinite_borders() {
        let c = Cholesky::decompose(&spd3()).unwrap();
        assert!(matches!(c.extend(&[1.0], 1.0), Err(GpError::ShapeMismatch { .. })));
        // A huge off-diagonal border makes the Schur complement negative.
        assert_eq!(
            c.extend(&[100.0, 100.0, 100.0], 1.0).unwrap_err(),
            GpError::NotPositiveDefinite
        );
    }
}
