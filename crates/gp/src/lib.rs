//! # clite-gp — a self-contained Gaussian-process regression stack
//!
//! CLITE's surrogate model is a Gaussian Process with a Matérn covariance
//! kernel (paper Sec. 4). The available Rust BO crates are thin, so this
//! crate implements the full stack from scratch:
//!
//! * [`linalg`] — dense matrices, Cholesky factorization with a jitter
//!   ladder, and triangular solves;
//! * [`stats`] — the standard-normal pdf/cdf (via an `erf` implementation),
//!   needed by Expected Improvement;
//! * [`kernel`] — Matérn 5/2, Matérn 3/2, and squared-exponential kernels
//!   with optional per-dimension (ARD) lengthscales;
//! * [`gp`] — GP regression: exact fit via Cholesky, predictive mean and
//!   variance, and the log marginal likelihood;
//! * [`hyper`] — derivative-free hyperparameter selection maximizing the
//!   log marginal likelihood over a small grid, which is what an online,
//!   time-constrained controller can afford.
//!
//! ## Example
//!
//! ```
//! use clite_gp::gp::{GaussianProcess, GpConfig};
//! use clite_gp::kernel::Kernel;
//!
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
//! let gp = GaussianProcess::fit(
//!     Kernel::matern52(1.0, 0.3),
//!     GpConfig::default(),
//!     xs,
//!     ys,
//! )?;
//! let (mean, var) = gp.predict(&[0.5]);
//! assert!(var >= 0.0);
//! assert!((mean - (0.5f64 * 3.0).sin()).abs() < 0.2);
//! # Ok::<(), clite_gp::GpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fastmath;
pub mod gp;
pub mod hyper;
pub mod kernel;
pub mod linalg;
pub mod stats;

mod error;

pub use error::GpError;
