//! # clite-faults — deterministic fault injection for CLITE testbeds
//!
//! CLITE's contract is "apply a partition, wait one observation window,
//! read the counters" (paper §4, Fig. 5). On a real warehouse-scale node
//! that loop fails in mundane ways: counters glitch and return garbage,
//! windows stall past their deadline, the isolation layer transiently
//! refuses an allocation, and sometimes the whole machine dies. This crate
//! injects exactly those failures into any [`Testbed`] so the rest of the
//! stack can prove it degrades gracefully instead of panicking or
//! converging on poisoned measurements.
//!
//! The design constraints, in order:
//!
//! 1. **Determinism.** The fault schedule is a pure function of
//!    ([`FaultSpec`], seed, window index). Every per-window decision draws
//!    from a freshly seeded RNG keyed by `(seed, window)`; enforcement
//!    faults draw from `(seed, call index)`. Nothing ever touches the
//!    inner testbed's RNG, so two runs with the same spec and seed replay
//!    the identical schedule, and threaded cluster admission stays
//!    byte-identical to serial as long as each node's fault seed is a pure
//!    function of committed state (the scheduler derives it from the same
//!    commit-count seed its searches use).
//! 2. **Rate-zero transparency.** With [`FaultSpec::none`] the decorator
//!    is byte-identical to the inner testbed on every [`Testbed`] method:
//!    no RNG draws, no extra windows, no perturbation of any kind.
//! 3. **Time is honest.** A faulted window still spends its time — a
//!    dropped window advances the clock one window, a stuck window burns
//!    its deadline's worth of extra windows — because the paper's overhead
//!    metric is windows spent, not windows measured.
//!
//! The fault taxonomy mirrors [`SimError`]'s fault variants:
//!
//! | fault | trigger | effect |
//! |---|---|---|
//! | counter spike | per-window `spike_prob` | one job's counters corrupted by `spike_magnitude` |
//! | dropped window | per-window `drop_prob` | window runs, counters unreadable ([`SimError::WindowDropped`]) |
//! | stuck window | per-window `stuck_prob` | deadline blown, `stuck_windows` extra windows lost ([`SimError::WindowTimeout`]) |
//! | enforcement fault | per-call `enforce_fail_prob` | [`Testbed::enforce`] transiently fails ([`SimError::EnforceFault`]) |
//! | node crash | `crash_at_window` / `crash_prob` | every later call fails permanently ([`SimError::NodeCrashed`]) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;
use clite_sim::queueing::QosSpec;
use clite_sim::resource::ResourceCatalog;
use clite_sim::server::JobSpec;
use clite_sim::testbed::{Testbed, TestbedFactory};
use clite_sim::workload::{JobClass, WorkloadId};
use clite_sim::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream tags keeping the per-window and per-enforce fault streams
/// disjoint even when window and call indices collide.
const WINDOW_TAG: u64 = 0x57_49_4e_44; // "WIND"
const ENFORCE_TAG: u64 = 0x45_4e_46_4f; // "ENFO"
const CRASH_TAG: u64 = 0x43_52_41_53; // "CRAS"

/// SplitMix64 finalizer: decorrelates structured `(seed, tag, index)`
/// triples into well-mixed RNG seeds.
fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    let mut z = seed ^ tag.rotate_left(32) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Declarative fault plan: the per-window and per-call fault rates a
/// [`FaultyTestbed`] draws from. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Per-window probability that one job's counters come back corrupted
    /// (a plausible-looking but wildly wrong outlier).
    pub spike_prob: f64,
    /// Multiplicative magnitude of a counter spike (latency inflated or
    /// deflated by this factor; BG throughput scaled accordingly).
    pub spike_magnitude: f64,
    /// Per-window probability the window's counters are unreadable.
    pub drop_prob: f64,
    /// Per-window probability the window stalls past its deadline.
    pub stuck_prob: f64,
    /// Extra windows of time a stuck window burns before timing out.
    pub stuck_windows: u64,
    /// Per-call probability that [`Testbed::enforce`] transiently fails.
    pub enforce_fail_prob: f64,
    /// Crash the node deterministically at this window index (overrides
    /// [`FaultSpec::crash_prob`]).
    pub crash_at_window: Option<u64>,
    /// Probability (drawn once per testbed from its fault seed) that the
    /// node crashes at all; if it does, the crash window is drawn
    /// uniformly from `1..=crash_window_max`.
    pub crash_prob: f64,
    /// Latest window a probabilistic crash can land on.
    pub crash_window_max: u64,
}

impl FaultSpec {
    /// The no-fault spec: a [`FaultyTestbed`] built from it is
    /// byte-identical to its inner testbed.
    #[must_use]
    pub fn none() -> Self {
        Self {
            spike_prob: 0.0,
            spike_magnitude: 8.0,
            drop_prob: 0.0,
            stuck_prob: 0.0,
            stuck_windows: 3,
            enforce_fail_prob: 0.0,
            crash_at_window: None,
            crash_prob: 0.0,
            crash_window_max: 64,
        }
    }

    /// The default chaos spec used by `colocate --faults default` and the
    /// chaos experiment: 5% counter spikes, 2% dropped windows, 1% stuck
    /// windows, 2% enforcement faults, and a 25% chance the node crashes
    /// somewhere in its first 64 windows (so a four-node cluster loses
    /// about one node per fleet).
    #[must_use]
    pub fn default_chaos() -> Self {
        Self {
            spike_prob: 0.05,
            drop_prob: 0.02,
            stuck_prob: 0.01,
            enforce_fail_prob: 0.02,
            crash_prob: 0.25,
            ..Self::none()
        }
    }

    /// Whether this spec can never inject a fault.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.spike_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.stuck_prob <= 0.0
            && self.enforce_fail_prob <= 0.0
            && self.crash_at_window.is_none()
            && self.crash_prob <= 0.0
    }

    /// Scales every fault *rate* by `factor` (clamped to `[0, 1]`),
    /// leaving magnitudes and the deterministic crash window unchanged.
    /// Used by the chaos experiment to sweep fault intensity.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let clamp = |p: f64| (p * factor).clamp(0.0, 1.0);
        Self {
            spike_prob: clamp(self.spike_prob),
            drop_prob: clamp(self.drop_prob),
            stuck_prob: clamp(self.stuck_prob),
            enforce_fail_prob: clamp(self.enforce_fail_prob),
            crash_prob: clamp(self.crash_prob),
            ..self.clone()
        }
    }

    /// Parses a spec from the `--faults` CLI grammar: `none`, `default`,
    /// or a comma-separated `key=value` list over the keys `spike`,
    /// `spike_mag`, `drop`, `stuck`, `stuck_windows`, `enforce`, `crash`
    /// (a window index), `crash_prob`, and `crash_max`. Unlisted keys keep
    /// their [`FaultSpec::none`] defaults, so `spike=0.1` means "10%
    /// spikes and nothing else".
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] naming the offending token, its
    /// position, and what was wrong with it.
    pub fn parse(s: &str) -> Result<Self, FaultSpecError> {
        let s = s.trim();
        match s {
            "none" => return Ok(Self::none()),
            "default" => return Ok(Self::default_chaos()),
            "" => {
                return Err(FaultSpecError {
                    index: 0,
                    token: String::new(),
                    kind: FaultSpecErrorKind::Empty,
                });
            }
            _ => {}
        }
        let mut spec = Self::none();
        for (index, part) in s.split(',').enumerate() {
            let part = part.trim();
            let err = |kind| FaultSpecError { index, token: part.to_string(), kind };
            let Some((key, value)) = part.split_once('=') else {
                return Err(err(FaultSpecErrorKind::MissingEquals));
            };
            let key = key.trim();
            let prob = |v: &str| -> Result<f64, FaultSpecErrorKind> {
                let p: f64 = v.parse().map_err(|_| FaultSpecErrorKind::BadNumber)?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultSpecErrorKind::OutOfRange {
                        bounds: "a probability in [0, 1]",
                    });
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, FaultSpecErrorKind> {
                v.parse().map_err(|_| FaultSpecErrorKind::BadNumber)
            };
            let parsed: Result<(), FaultSpecErrorKind> = match key {
                "spike" => prob(value).map(|p| spec.spike_prob = p),
                "spike_mag" => match value.parse::<f64>() {
                    Err(_) => Err(FaultSpecErrorKind::BadNumber),
                    Ok(m) if m <= 1.0 => {
                        Err(FaultSpecErrorKind::OutOfRange { bounds: "a magnitude above 1" })
                    }
                    Ok(m) => {
                        spec.spike_magnitude = m;
                        Ok(())
                    }
                },
                "drop" => prob(value).map(|p| spec.drop_prob = p),
                "stuck" => prob(value).map(|p| spec.stuck_prob = p),
                "stuck_windows" => int(value).map(|n| spec.stuck_windows = n),
                "enforce" => prob(value).map(|p| spec.enforce_fail_prob = p),
                "crash" => int(value).map(|n| spec.crash_at_window = Some(n)),
                "crash_prob" => prob(value).map(|p| spec.crash_prob = p),
                "crash_max" => int(value).map(|n| spec.crash_window_max = n.max(1)),
                _ => Err(FaultSpecErrorKind::UnknownKey),
            };
            parsed.map_err(err)?;
        }
        Ok(spec)
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// Error from [`FaultSpec::parse`]: which token was bad, where it sat in
/// the comma-separated spec, and why it was rejected. The CLI surfaces
/// all three so the user can fix the exact token instead of re-deriving
/// it from a free-form message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// 0-based position of the offending token among the comma-separated
    /// parts of the spec string.
    pub index: usize,
    /// The offending token, trimmed (empty when the whole spec was empty).
    pub token: String,
    /// What was wrong with it.
    pub kind: FaultSpecErrorKind,
}

/// What [`FaultSpec::parse`] rejected about a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSpecErrorKind {
    /// The spec string was empty.
    Empty,
    /// The token had no `=` (and was not `none`/`default`).
    MissingEquals,
    /// The key is not in the fault grammar.
    UnknownKey,
    /// The value did not parse as a number.
    BadNumber,
    /// The value parsed but fell outside its legal range.
    OutOfRange {
        /// What the value must be.
        bounds: &'static str,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Self { index, token, kind } = self;
        match kind {
            FaultSpecErrorKind::Empty => write!(f, "invalid fault spec: empty"),
            FaultSpecErrorKind::MissingEquals => write!(
                f,
                "invalid fault spec at token {index} (`{token}`): \
                 expected key=value (or use `none`/`default`)"
            ),
            FaultSpecErrorKind::UnknownKey => {
                write!(f, "invalid fault spec at token {index} (`{token}`): unknown fault key")
            }
            FaultSpecErrorKind::BadNumber => {
                write!(f, "invalid fault spec at token {index} (`{token}`): bad number")
            }
            FaultSpecErrorKind::OutOfRange { bounds } => {
                write!(f, "invalid fault spec at token {index} (`{token}`): value must be {bounds}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Deterministic kill schedule for a durable fleet run: the "process"
/// dies immediately after handling its `after_event`-th journaled event
/// (0-based seqno), at one of two instruction boundaries. Sweeping
/// `after_event` over every seqno — at both boundaries — is how the
/// recovery experiment proves checkpoint+journal replay byte-identical
/// to a never-crashed run at *any* kill point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Seqno of the last event handled before the kill.
    pub after_event: u64,
    /// Which side of the journal/apply boundary the kill lands on.
    pub point: CrashPoint,
}

/// Where, relative to one event's write-ahead protocol, a [`CrashPlan`]
/// kills the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the event is journaled but before it mutates scheduler
    /// state: recovery must re-apply it from the journal.
    Journaled,
    /// After the event is applied (and any due checkpoint written):
    /// recovery must *not* double-apply it.
    Applied,
}

impl CrashPlan {
    /// Whether the plan fires at `point` for the event with `seqno`.
    #[must_use]
    pub fn fires(&self, seqno: u64, point: CrashPoint) -> bool {
        self.after_event == seqno && self.point == point
    }
}

/// Counters for every fault this decorator has injected, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Counter spikes injected into otherwise-valid observations.
    pub spikes: u64,
    /// Windows dropped (ran, but counters unreadable).
    pub dropped: u64,
    /// Windows that stalled past their deadline.
    pub stuck: u64,
    /// Transient enforcement failures.
    pub enforce_faults: u64,
    /// Node crashes (0 or 1 per testbed).
    pub crashes: u64,
}

impl FaultStats {
    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.spikes + self.dropped + self.stuck + self.enforce_faults + self.crashes
    }
}

/// A fault-injecting decorator over any [`Testbed`].
///
/// Faults surface through the fallible halves of the trait —
/// [`Testbed::enforce`] and [`Testbed::try_observe_window`] — as typed
/// [`SimError`] fault variants. The infallible [`Testbed::observe_window`]
/// panics on an injected fault by design: code still on the legacy panic
/// contract has no way to survive faults and should not be run under them.
#[derive(Debug)]
pub struct FaultyTestbed<T: Testbed> {
    inner: T,
    spec: FaultSpec,
    seed: u64,
    /// Window the node crashes at, resolved once at construction so the
    /// schedule never depends on how the testbed is driven.
    crash_at: Option<u64>,
    crashed: bool,
    /// Index of the next observation window (counts faulted windows too).
    window: u64,
    /// Index of the next `enforce` call, keying the enforcement stream.
    enforce_calls: u64,
    /// Windows of time burned by faulted windows (dropped + stuck), which
    /// the inner testbed's sample counter never saw.
    lost_windows: u64,
    stats: FaultStats,
}

impl<T: Testbed> FaultyTestbed<T> {
    /// Wraps `inner` with the fault plan `spec`, drawing every fault
    /// stream from `seed`. A probabilistic crash window is resolved here,
    /// once, so it is a pure function of `(spec, seed)`.
    pub fn new(inner: T, spec: FaultSpec, seed: u64) -> Self {
        let crash_at = match spec.crash_at_window {
            Some(k) => Some(k),
            None if spec.crash_prob > 0.0 => {
                let mut rng = StdRng::seed_from_u64(mix(seed, CRASH_TAG, 0));
                rng.gen_bool(spec.crash_prob)
                    .then(|| rng.gen_range(1..=spec.crash_window_max.max(1)))
            }
            None => None,
        };
        Self {
            inner,
            spec,
            seed,
            crash_at,
            crashed: false,
            window: 0,
            enforce_calls: 0,
            lost_windows: 0,
            stats: FaultStats::default(),
        }
    }

    /// The fault plan this decorator draws from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Fault counts injected so far, by kind.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether the node has crashed (every further call fails).
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The wrapped testbed.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps back to the inner testbed.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Corrupts one job's counters in `obs`: an RNG-picked job has its
    /// tail latency inflated (or, half the time, deflated — an optimistic
    /// lie) by the spike magnitude, with QoS verdict and normalized
    /// throughput kept self-consistent so the outlier *looks* like a real
    /// measurement.
    fn spike(&mut self, obs: &mut Observation, rng: &mut StdRng) {
        if obs.jobs.is_empty() {
            return;
        }
        let job = rng.gen_range(0..obs.jobs.len());
        let magnitude = if rng.gen_bool(0.5) {
            self.spec.spike_magnitude
        } else {
            1.0 / self.spec.spike_magnitude
        };
        let j = &mut obs.jobs[job];
        j.latency_p95_us *= magnitude;
        if let Some(target) = j.qos_target_us {
            j.qos_met = Some(j.latency_p95_us <= target);
        }
        j.normalized_perf = (j.normalized_perf / magnitude).max(1e-6);
        self.stats.spikes += 1;
    }
}

impl<T: Testbed> Testbed for FaultyTestbed<T> {
    fn catalog(&self) -> &ResourceCatalog {
        self.inner.catalog()
    }

    fn job_count(&self) -> usize {
        self.inner.job_count()
    }

    fn job_specs(&self) -> Vec<JobSpec> {
        self.inner.job_specs()
    }

    fn workload(&self, job: usize) -> WorkloadId {
        self.inner.workload(job)
    }

    fn class(&self, job: usize) -> JobClass {
        self.inner.class(job)
    }

    fn qos(&self, job: usize) -> Option<QosSpec> {
        self.inner.qos(job)
    }

    fn load(&self, job: usize) -> f64 {
        self.inner.load(job)
    }

    fn set_load(&mut self, job: usize, load_frac: f64) -> Result<(), SimError> {
        self.inner.set_load(job, load_frac)
    }

    fn time_s(&self) -> f64 {
        self.inner.time_s()
    }

    fn window_s(&self) -> f64 {
        self.inner.window_s()
    }

    fn samples_observed(&self) -> u64 {
        // Faulted windows spent their time trying to measure; they count
        // toward the paper's windows-spent overhead metric even though the
        // inner testbed never finished them.
        self.inner.samples_observed() + self.lost_windows
    }

    fn enforce(&mut self, partition: &Partition) -> Result<(), SimError> {
        if self.crashed {
            return Err(SimError::NodeCrashed { window: self.window });
        }
        if self.spec.enforce_fail_prob > 0.0 {
            let call = self.enforce_calls;
            self.enforce_calls += 1;
            let mut rng = StdRng::seed_from_u64(mix(self.seed, ENFORCE_TAG, call));
            if rng.gen_bool(self.spec.enforce_fail_prob) {
                self.stats.enforce_faults += 1;
                return Err(SimError::EnforceFault { window: self.window });
            }
        }
        self.inner.enforce(partition)
    }

    fn observe_window(&mut self) -> Observation {
        self.try_observe_window()
            .expect("window faulted — drive FaultyTestbed through try_observe_window")
    }

    fn try_observe_window(&mut self) -> Result<Observation, SimError> {
        if self.crashed {
            return Err(SimError::NodeCrashed { window: self.window });
        }
        let window = self.window;
        self.window += 1;
        if let Some(k) = self.crash_at {
            if window >= k {
                self.crashed = true;
                self.stats.crashes += 1;
                return Err(SimError::NodeCrashed { window });
            }
        }
        if self.spec.is_none() {
            return Ok(self.inner.observe_window());
        }
        // One fresh RNG per window, drawn in a fixed order, so the
        // schedule is a pure function of (spec, seed, window index).
        let mut rng = StdRng::seed_from_u64(mix(self.seed, WINDOW_TAG, window));
        if self.spec.stuck_prob > 0.0 && rng.gen_bool(self.spec.stuck_prob) {
            let lost_windows = self.spec.stuck_windows + 1;
            for _ in 0..lost_windows {
                self.inner.advance_window();
            }
            self.lost_windows += lost_windows;
            self.stats.stuck += 1;
            return Err(SimError::WindowTimeout { window, lost_windows });
        }
        if self.spec.drop_prob > 0.0 && rng.gen_bool(self.spec.drop_prob) {
            self.inner.advance_window();
            self.lost_windows += 1;
            self.stats.dropped += 1;
            return Err(SimError::WindowDropped { window });
        }
        let mut obs = self.inner.observe_window();
        if self.spec.spike_prob > 0.0 && rng.gen_bool(self.spec.spike_prob) {
            self.spike(&mut obs, &mut rng);
        }
        Ok(obs)
    }

    fn advance_window(&mut self) {
        self.inner.advance_window();
    }
}

/// A [`TestbedFactory`] decorator: every testbed the inner factory builds
/// is wrapped in a [`FaultyTestbed`] whose fault seed is the build seed.
///
/// The cluster scheduler derives each node's build seed from
/// `(node id, commit count)`, a pure function of committed state — so the
/// fault schedule is too, and threaded admission stays byte-identical to
/// serial even under injected crashes.
#[derive(Debug, Clone)]
pub struct FaultyFactory<F: TestbedFactory> {
    inner: F,
    spec: FaultSpec,
}

impl<F: TestbedFactory> FaultyFactory<F> {
    /// Wraps `inner` so its products inject faults per `spec`.
    pub fn new(inner: F, spec: FaultSpec) -> Self {
        Self { inner, spec }
    }

    /// The fault plan applied to every built testbed.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }
}

impl<F: TestbedFactory> TestbedFactory for FaultyFactory<F> {
    type Output = FaultyTestbed<F::Output>;

    fn build(
        &self,
        catalog: ResourceCatalog,
        jobs: Vec<JobSpec>,
        seed: u64,
    ) -> Result<Self::Output, SimError> {
        Ok(FaultyTestbed::new(self.inner.build(catalog, jobs, seed)?, self.spec.clone(), seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::server::Server;
    use clite_sim::testbed::ServerFactory;

    fn server(seed: u64) -> Server {
        Server::new(
            ResourceCatalog::testbed(),
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
                JobSpec::background(WorkloadId::Blackscholes),
            ],
            seed,
        )
        .unwrap()
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        assert_eq!(FaultSpec::parse("none").unwrap(), FaultSpec::none());
        assert_eq!(FaultSpec::parse("default").unwrap(), FaultSpec::default_chaos());
        let spec = FaultSpec::parse(
            "spike=0.1,drop=0.05,stuck=0.02,stuck_windows=4,enforce=0.03,crash=12",
        )
        .unwrap();
        assert_eq!(spec.spike_prob, 0.1);
        assert_eq!(spec.drop_prob, 0.05);
        assert_eq!(spec.stuck_prob, 0.02);
        assert_eq!(spec.stuck_windows, 4);
        assert_eq!(spec.enforce_fail_prob, 0.03);
        assert_eq!(spec.crash_at_window, Some(12));
        assert!(FaultSpec::parse("spike=2").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("").is_err());
        assert!(FaultSpec::parse("spike").is_err());
    }

    #[test]
    fn parse_errors_carry_token_and_position() {
        let err = FaultSpec::parse("spike=0.1,bogus=1").unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.token, "bogus=1");
        assert_eq!(err.kind, FaultSpecErrorKind::UnknownKey);
        assert!(err.to_string().contains("token 1"));
        assert!(err.to_string().contains("bogus=1"));

        let err = FaultSpec::parse("drop=0.1, spike=nan?, crash=3").unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.token, "spike=nan?");
        assert_eq!(err.kind, FaultSpecErrorKind::BadNumber);

        let err = FaultSpec::parse("spike=1.5").unwrap_err();
        assert!(matches!(err.kind, FaultSpecErrorKind::OutOfRange { .. }));
        let err = FaultSpec::parse("spike_mag=0.5").unwrap_err();
        assert!(matches!(err.kind, FaultSpecErrorKind::OutOfRange { .. }));
        let err = FaultSpec::parse("spike").unwrap_err();
        assert_eq!(err.kind, FaultSpecErrorKind::MissingEquals);
        assert_eq!(FaultSpec::parse("").unwrap_err().kind, FaultSpecErrorKind::Empty);
    }

    #[test]
    fn crash_plan_fires_at_exactly_one_boundary() {
        let plan = CrashPlan { after_event: 3, point: CrashPoint::Journaled };
        assert!(plan.fires(3, CrashPoint::Journaled));
        assert!(!plan.fires(3, CrashPoint::Applied));
        assert!(!plan.fires(2, CrashPoint::Journaled));
        let plan = CrashPlan { after_event: 0, point: CrashPoint::Applied };
        assert!(plan.fires(0, CrashPoint::Applied));
        assert!(!plan.fires(0, CrashPoint::Journaled));
    }

    #[test]
    fn crash_at_window_is_permanent() {
        let mut t = FaultyTestbed::new(
            server(1),
            FaultSpec { crash_at_window: Some(2), ..FaultSpec::none() },
            9,
        );
        let p = Partition::equal_share(t.catalog(), 2).unwrap();
        t.enforce(&p).unwrap();
        assert!(t.try_observe_window().is_ok());
        assert!(t.try_observe_window().is_ok());
        let err = t.try_observe_window().unwrap_err();
        assert!(err.is_node_crash());
        assert!(t.crashed());
        assert!(t.enforce(&p).unwrap_err().is_node_crash());
        assert!(t.try_observe_window().unwrap_err().is_node_crash());
        assert_eq!(t.stats().crashes, 1);
    }

    #[test]
    fn faulted_windows_still_spend_time() {
        // drop_prob = 1: every window drops, clock advances anyway.
        let mut t =
            FaultyTestbed::new(server(2), FaultSpec { drop_prob: 1.0, ..FaultSpec::none() }, 5);
        let p = Partition::equal_share(t.catalog(), 2).unwrap();
        t.enforce(&p).unwrap();
        let t0 = t.time_s();
        let err = t.try_observe_window().unwrap_err();
        assert!(matches!(err, SimError::WindowDropped { window: 0 }));
        assert!(t.time_s() >= t0 + t.window_s() - 1e-9);
        assert_eq!(t.samples_observed(), 1);

        let mut t = FaultyTestbed::new(
            server(2),
            FaultSpec { stuck_prob: 1.0, stuck_windows: 3, ..FaultSpec::none() },
            5,
        );
        t.enforce(&p).unwrap();
        let t0 = t.time_s();
        let err = t.try_observe_window().unwrap_err();
        assert!(matches!(err, SimError::WindowTimeout { window: 0, lost_windows: 4 }));
        assert!(t.time_s() >= t0 + 4.0 * t.window_s() - 1e-9);
        assert_eq!(t.samples_observed(), 4);
    }

    #[test]
    fn spikes_corrupt_exactly_one_job_per_hit() {
        let mut faulty =
            FaultyTestbed::new(server(3), FaultSpec { spike_prob: 1.0, ..FaultSpec::none() }, 7);
        let mut clean = server(3);
        let p = Partition::equal_share(Testbed::catalog(&clean), 2).unwrap();
        faulty.enforce(&p).unwrap();
        Testbed::enforce(&mut clean, &p).unwrap();
        let spiked = faulty.try_observe_window().unwrap();
        let truth = Testbed::observe_window(&mut clean);
        let differing = spiked
            .jobs
            .iter()
            .zip(&truth.jobs)
            .filter(|(a, b)| a.latency_p95_us != b.latency_p95_us)
            .count();
        assert_eq!(differing, 1);
        assert_eq!(faulty.stats().spikes, 1);
    }

    #[test]
    fn enforce_faults_are_transient() {
        let mut t = FaultyTestbed::new(
            server(4),
            FaultSpec { enforce_fail_prob: 0.5, ..FaultSpec::none() },
            11,
        );
        let p = Partition::equal_share(t.catalog(), 2).unwrap();
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..64 {
            match t.enforce(&p) {
                Ok(()) => successes += 1,
                Err(e) => {
                    assert!(e.is_transient_fault());
                    failures += 1;
                }
            }
        }
        assert!(failures > 0 && successes > 0);
        assert_eq!(t.stats().enforce_faults, failures);
    }

    #[test]
    fn faulty_factory_wraps_products() {
        let f = FaultyFactory::new(
            ServerFactory,
            FaultSpec { crash_at_window: Some(1), ..FaultSpec::none() },
        );
        let mut t = f
            .build(
                ResourceCatalog::testbed(),
                vec![JobSpec::latency_critical(WorkloadId::Xapian, 0.3)],
                7,
            )
            .unwrap();
        assert!(t.try_observe_window().is_ok());
        assert!(t.try_observe_window().unwrap_err().is_node_crash());
    }
}
