//! Property tests pinning the two contracts everything downstream trusts:
//!
//! 1. **Rate-zero transparency** — a [`FaultyTestbed`] built from
//!    [`FaultSpec::none`] is byte-identical to its inner testbed on every
//!    [`Testbed`] method, so wiring the decorator in unconditionally can
//!    never perturb a fault-free run.
//! 2. **Schedule determinism** — the same [`FaultSpec`] + seed replays
//!    the identical fault schedule (same kinds, same windows, same
//!    corrupted counters), which is what keeps chaos runs reproducible and
//!    threaded cluster admission byte-identical to serial.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use clite_faults::{FaultSpec, FaultyTestbed};
use clite_sim::prelude::*;
use clite_sim::testbed::Testbed;
use clite_sim::SimError;

/// An alternating LC/BG mix of `jobs` co-located jobs.
fn specs(jobs: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            if i % 2 == 0 {
                JobSpec::latency_critical(WorkloadId::LATENCY_CRITICAL[i % 5], 0.3)
            } else {
                JobSpec::background(WorkloadId::BACKGROUND[i % 6])
            }
        })
        .collect()
}

fn server(jobs: usize, seed: u64) -> Server {
    Server::new(ResourceCatalog::testbed(), specs(jobs), seed).unwrap()
}

/// A compact, comparable record of one driving step's outcome.
#[derive(Debug, Clone, PartialEq)]
enum StepResult {
    Enforced(Result<(), SimError>),
    Observed(Result<Observation, SimError>),
    Advanced,
}

/// Drives `t` through a seed-derived mixed schedule of enforce /
/// try_observe_window / advance_window / set_load calls and records every
/// outcome plus the clock and counters after each step.
fn drive<T: Testbed>(t: &mut T, jobs: usize, schedule_seed: u64) -> Vec<(StepResult, u64, u64)> {
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let catalog = *t.catalog();
    let mut log = Vec::new();
    for step in 0..30u32 {
        let result = match step % 5 {
            0 => {
                let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
                StepResult::Enforced(t.enforce(&p))
            }
            4 => {
                t.advance_window();
                StepResult::Advanced
            }
            _ => StepResult::Observed(t.try_observe_window()),
        };
        log.push((result, t.samples_observed(), t.time_s().to_bits()));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `FaultSpec::none()` makes the decorator a perfect pass-through:
    /// identical results, identical clock, identical sample accounting,
    /// bit-for-bit, on every method of the trait.
    #[test]
    fn rate_zero_is_byte_identical_to_inner(
        jobs in 1usize..=4,
        seed: u64,
        schedule_seed: u64,
    ) {
        let mut bare = server(jobs, seed);
        let mut faulty = FaultyTestbed::new(server(jobs, seed), FaultSpec::none(), seed ^ 0xdead);

        // Static metadata is forwarded untouched.
        prop_assert_eq!(Testbed::job_count(&bare), faulty.job_count());
        prop_assert_eq!(Testbed::job_specs(&bare), faulty.job_specs());
        prop_assert_eq!(Testbed::catalog(&bare), faulty.catalog());
        prop_assert_eq!(Testbed::window_s(&bare).to_bits(), faulty.window_s().to_bits());
        for j in 0..jobs {
            prop_assert_eq!(Testbed::workload(&bare, j), faulty.workload(j));
            prop_assert_eq!(Testbed::class(&bare, j), faulty.class(j));
            prop_assert_eq!(Testbed::qos(&bare, j), faulty.qos(j));
            prop_assert_eq!(Testbed::load(&bare, j).to_bits(), faulty.load(j).to_bits());
        }
        prop_assert_eq!(Testbed::lc_indices(&bare), faulty.lc_indices());
        prop_assert_eq!(Testbed::bg_indices(&bare), faulty.bg_indices());

        // A load change behaves identically through both.
        if let Some(&lc) = Testbed::lc_indices(&bare).first() {
            prop_assert_eq!(Testbed::set_load(&mut bare, lc, 0.55), faulty.set_load(lc, 0.55));
        }
        prop_assert_eq!(
            Testbed::set_load(&mut bare, jobs, 0.5),
            faulty.set_load(jobs, 0.5)
        );

        // The full mutating schedule replays bit-for-bit.
        let bare_log = drive(&mut bare, jobs, schedule_seed);
        let faulty_log = drive(&mut faulty, jobs, schedule_seed);
        prop_assert_eq!(bare_log, faulty_log);
        prop_assert_eq!(faulty.stats().total(), 0);
    }

    /// Same `FaultSpec` + same seed ⇒ the identical fault schedule: every
    /// outcome (including which windows fault, how, and the exact
    /// corrupted counter values) and every per-kind fault count replays.
    #[test]
    fn same_spec_and_seed_replay_identical_schedule(
        jobs in 1usize..=4,
        seed: u64,
        fault_seed: u64,
        schedule_seed: u64,
    ) {
        let spec = FaultSpec {
            spike_prob: 0.25,
            drop_prob: 0.15,
            stuck_prob: 0.1,
            stuck_windows: 2,
            enforce_fail_prob: 0.1,
            ..FaultSpec::none()
        };
        let mut a = FaultyTestbed::new(server(jobs, seed), spec.clone(), fault_seed);
        let mut b = FaultyTestbed::new(server(jobs, seed), spec, fault_seed);
        let log_a = drive(&mut a, jobs, schedule_seed);
        let log_b = drive(&mut b, jobs, schedule_seed);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.crashed(), b.crashed());
    }

    /// A different fault seed over the same inner testbed changes only the
    /// fault schedule, never the inner measurements: windows that succeed
    /// in both runs return identical observations.
    #[test]
    fn fault_stream_is_independent_of_measurements(
        jobs in 1usize..=3,
        seed: u64,
        fault_seed: u64,
    ) {
        let spec = FaultSpec { drop_prob: 0.3, ..FaultSpec::none() };
        let mut faulty = FaultyTestbed::new(server(jobs, seed), spec, fault_seed);
        let mut bare = server(jobs, seed);
        let p = Partition::equal_share(&ResourceCatalog::testbed(), jobs).unwrap();
        faulty.enforce(&p).unwrap();
        Testbed::enforce(&mut bare, &p).unwrap();
        for _ in 0..20 {
            match faulty.try_observe_window() {
                Ok(obs) => {
                    // The inner RNG stream is untouched by fault draws, so
                    // the bare twin — advanced in lockstep — must agree.
                    let truth = Testbed::observe_window(&mut bare);
                    prop_assert_eq!(obs.jobs, truth.jobs);
                }
                Err(e) => {
                    prop_assert!(e.is_transient_fault());
                    Testbed::advance_window(&mut bare);
                }
            }
        }
    }
}
