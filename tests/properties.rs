//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;

use clite_repro::bo::acquisition::Acquisition;
use clite_repro::bo::space::SearchSpace;
use clite_repro::core::score::score_observation;
use clite_repro::gp::gp::{GaussianProcess, GpConfig};
use clite_repro::gp::kernel::Kernel;
use clite_repro::gp::stats::{geometric_mean, norm_cdf};
use clite_repro::sim::perf::query_time_us;
use clite_repro::sim::prelude::*;
use clite_repro::sim::queueing::p95_latency_us;
use clite_repro::sim::resource::{ResourceKind, NUM_RESOURCES};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_catalog() -> impl Strategy<Value = ResourceCatalog> {
    (4u32..=12, 4u32..=12, 4u32..=12, 4u32..=12, 4u32..=12, 4u32..=12)
        .prop_map(|(a, b, c, d, e, f)| ResourceCatalog::new([a, b, c, d, e, f]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random partitions always satisfy both feasibility invariants.
    #[test]
    fn random_partitions_feasible(catalog in arb_catalog(), jobs in 1usize..=4, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
        for r in ResourceKind::ALL {
            let sum: u32 = (0..jobs).map(|j| p.units(j, r)).sum();
            prop_assert_eq!(sum, catalog.units(r));
            for j in 0..jobs {
                prop_assert!(p.units(j, r) >= 1);
            }
        }
    }

    /// Every single-unit-transfer neighbour is feasible and exactly one
    /// move away (feature-space L1 distance of two changed cells).
    #[test]
    fn neighbors_are_one_transfer_away(seed: u64, jobs in 2usize..=4) {
        let catalog = ResourceCatalog::testbed();
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
        for n in p.neighbors(None) {
            let mut changed = 0;
            for j in 0..jobs {
                for r in ResourceKind::ALL {
                    let d = i64::from(p.units(j, r)) - i64::from(n.units(j, r));
                    prop_assert!(d.abs() <= 1);
                    if d != 0 { changed += 1; }
                }
            }
            prop_assert_eq!(changed, 2, "one donor cell and one recipient cell");
        }
    }

    /// The performance model is monotone: strictly more of every resource
    /// never increases per-query time.
    #[test]
    fn query_time_monotone(seed: u64) {
        let catalog = ResourceCatalog::testbed();
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(&catalog, 2, &mut rng).unwrap();
        let small = p.job(0);
        let full = JobAllocation::from_units(catalog.all_units());
        for w in WorkloadId::ALL {
            let profile = w.profile();
            prop_assert!(
                query_time_us(&profile, &full, &catalog)
                    <= query_time_us(&profile, small, &catalog) + 1e-9
            );
        }
    }

    /// Tail latency is monotone in offered load and never below the
    /// zero-load floor.
    #[test]
    fn p95_monotone_in_lambda(mu in 100.0f64..1e6, service in 1.0f64..1e5, frac in 0.0f64..3.0) {
        let low = p95_latency_us(mu * frac * 0.5, mu, service);
        let high = p95_latency_us(mu * frac, mu, service);
        prop_assert!(high >= low - 1e-9);
        prop_assert!(low >= service * 2.9957 - 1e-6);
    }

    /// Eq. 3 scores are always within [0, 1], and the 0.5 boundary
    /// separates the two modes.
    #[test]
    fn score_bounded_and_mode_consistent(seed: u64, jobs in 2usize..=5) {
        let catalog = ResourceCatalog::testbed();
        let mut rng = StdRng::seed_from_u64(seed);
        let specs: Vec<JobSpec> = (0..jobs)
            .map(|i| {
                if i % 2 == 0 {
                    JobSpec::latency_critical(WorkloadId::LATENCY_CRITICAL[i % 5], 0.4)
                } else {
                    JobSpec::background(WorkloadId::BACKGROUND[i % 6])
                }
            })
            .collect();
        let server = Server::new(catalog, specs, seed).unwrap();
        let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
        let obs = server.ground_truth(&p);
        let sb = score_observation(&obs);
        prop_assert!((0.0..=1.0).contains(&sb.value), "score {}", sb.value);
        if obs.all_qos_met() {
            prop_assert!(sb.value >= 0.5);
        } else {
            prop_assert!(sb.value <= 0.5);
        }
    }

    /// Expected improvement is non-negative and zero at zero uncertainty.
    #[test]
    fn ei_nonnegative(mean in -2.0f64..2.0, std in 0.0f64..2.0, best in -2.0f64..2.0) {
        let acq = Acquisition::paper_default();
        let v = acq.score(mean, std, best);
        prop_assert!(v >= 0.0);
        if std == 0.0 {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// The normal CDF is a CDF: bounded, monotone.
    #[test]
    fn cdf_is_a_cdf(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&norm_cdf(a)));
    }

    /// Geometric mean lies between min and max of positive inputs.
    #[test]
    fn geometric_mean_between_extremes(xs in prop::collection::vec(1e-6f64..1e3, 1..8)) {
        let g = geometric_mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    /// GP predictions at training points approach the targets, and
    /// predictive variance is non-negative everywhere.
    #[test]
    fn gp_sane_on_random_data(seed: u64, n in 3usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = ResourceCatalog::testbed();
        let space = SearchSpace::new(catalog, 2).unwrap();
        let xs: Vec<Vec<f64>> =
            (0..n).map(|_| space.encode(&space.random(&mut rng).unwrap())).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / x.len() as f64).collect();
        let gp = GaussianProcess::fit(
            Kernel::matern52(0.05, 0.5),
            GpConfig::default(),
            xs.clone(),
            ys.clone(),
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            prop_assert!(v >= 0.0);
            // Duplicated random points make exact interpolation impossible;
            // allow a loose tolerance.
            prop_assert!((m - y).abs() < 0.5, "mean {m} target {y}");
        }
    }

    /// Feature encodings always have N_jobs × N_res entries in (0, 1].
    #[test]
    fn features_shape_and_range(seed: u64, jobs in 1usize..=5) {
        let catalog = ResourceCatalog::testbed();
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(&catalog, jobs, &mut rng).unwrap();
        let f = p.features();
        prop_assert_eq!(f.len(), jobs * NUM_RESOURCES);
        prop_assert!(f.iter().all(|&x| x > 0.0 && x <= 1.0));
    }
}
