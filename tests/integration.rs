//! Cross-crate integration tests: end-to-end scenarios spanning the
//! simulator substrate, the BO engine, the CLITE controller, and the
//! baseline policies.

use clite_repro::bench::mixes::{fig12_mix, fig9a_mix, Mix};
use clite_repro::bench::runner::{final_eval, run_policy, PolicyKind};
use clite_repro::bo::engine::{BoConfig, BoEngine};
use clite_repro::bo::space::SearchSpace;
use clite_repro::core::config::CliteConfig;
use clite_repro::core::controller::CliteController;
use clite_repro::core::score::{score_observation, ScoreMode};
use clite_repro::sim::prelude::*;
use clite_repro::sim::resource::ResourceKind;
use clite_repro::sim::workload::WorkloadId as W;

fn server(jobs: Vec<JobSpec>, seed: u64) -> Server {
    Server::new(ResourceCatalog::testbed(), jobs, seed).unwrap()
}

#[test]
fn clite_meets_qos_and_feeds_bg_on_moderate_mix() {
    let mix = fig9a_mix();
    let outcome = run_policy(PolicyKind::Clite, &mix, 1);
    let obs = final_eval(&mix, &outcome, 1);
    assert!(obs.all_qos_met(), "CLITE must co-locate 3 LC @30% + streamcluster");
    assert!(
        obs.mean_bg_perf().unwrap() > 0.01,
        "BG job must get more than crumbs: {:?}",
        obs.mean_bg_perf()
    );
}

#[test]
fn clite_beats_parties_on_bg_performance() {
    // The paper's core claim, end to end. On easy cells both policies
    // approach ORACLE and the ordering is within noise, so the test
    // asserts (a) rough parity on an easy 2-LC cell and (b) a clear CLITE
    // win on a harder mix where PARTIES' leftover donation is not enough.
    let easy = fig12_mix(0.3, 0.3);
    let mut clite_total = 0.0;
    let mut parties_total = 0.0;
    for seed in [3u64, 13, 23] {
        let clite = run_policy(PolicyKind::Clite, &easy, seed);
        let parties = run_policy(PolicyKind::Parties, &easy, seed);
        let clite_obs = final_eval(&easy, &clite, seed);
        let parties_obs = final_eval(&easy, &parties, seed);
        assert!(clite_obs.all_qos_met(), "seed {seed}");
        assert!(parties_obs.all_qos_met(), "seed {seed}");
        clite_total += clite_obs.mean_bg_perf().unwrap();
        parties_total += parties_obs.mean_bg_perf().unwrap();
    }
    assert!(
        clite_total > parties_total * 0.85,
        "CLITE BG total {clite_total:.3} must stay near PARTIES {parties_total:.3} on easy cells"
    );

    // Hard mix (paper Fig. 13's second set + blackscholes): CLITE wins
    // decisively or PARTIES fails QoS outright.
    let hard =
        Mix::new(&[(W::Specjbb, 0.3), (W::Masstree, 0.3), (W::Xapian, 0.3)], &[W::Blackscholes]);
    let mut clite_wins = 0;
    for seed in [3u64, 13, 23] {
        let clite = run_policy(PolicyKind::Clite, &hard, seed);
        let parties = run_policy(PolicyKind::Parties, &hard, seed);
        let clite_obs = final_eval(&hard, &clite, seed);
        let parties_obs = final_eval(&hard, &parties, seed);
        let c = if clite_obs.all_qos_met() { clite_obs.mean_bg_perf().unwrap() } else { 0.0 };
        let p = if parties_obs.all_qos_met() { parties_obs.mean_bg_perf().unwrap() } else { 0.0 };
        if c >= p {
            clite_wins += 1;
        }
    }
    assert!(clite_wins >= 2, "CLITE must win the hard mix on most seeds ({clite_wins}/3)");
}

#[test]
fn oracle_bounds_every_online_policy() {
    let mix = Mix::new(&[(W::Memcached, 0.4), (W::Xapian, 0.3)], &[W::Canneal]);
    let oracle = run_policy(PolicyKind::Oracle, &mix, 5);
    let oracle_obs = final_eval(&mix, &oracle, 5);
    let oracle_score = score_observation(&oracle_obs).value;
    for kind in
        [PolicyKind::Parties, PolicyKind::RandomPlus, PolicyKind::Genetic, PolicyKind::Clite]
    {
        let outcome = run_policy(kind, &mix, 5);
        let obs = final_eval(&mix, &outcome, 5);
        let score = score_observation(&obs).value;
        assert!(
            score <= oracle_score + 0.02,
            "{} scored {score:.4} above ORACLE {oracle_score:.4}",
            kind.name()
        );
    }
}

#[test]
fn score_mode_transitions_match_qos_state() {
    let s = server(
        vec![JobSpec::latency_critical(W::Memcached, 0.3), JobSpec::background(W::Swaptions)],
        7,
    );
    // Starving the LC job => violation mode; feeding it => performance mode.
    let starved = Partition::max_for_job(s.catalog(), 2, 1).unwrap();
    let fed = Partition::max_for_job(s.catalog(), 2, 0).unwrap();
    assert_eq!(score_observation(&s.ground_truth(&starved)).mode, ScoreMode::QosViolated);
    assert_eq!(score_observation(&s.ground_truth(&fed)).mode, ScoreMode::QosMet);
}

#[test]
fn bo_engine_on_real_server_objective() {
    // Drive the generic BO engine directly against the simulator's score,
    // the way the CLITE controller does, and verify it improves.
    let mut srv = server(
        vec![JobSpec::latency_critical(W::ImgDnn, 0.4), JobSpec::background(W::Blackscholes)],
        11,
    );
    let space = SearchSpace::new(*srv.catalog(), 2).unwrap();
    let mut engine = BoEngine::new(space, BoConfig::default(), 11);
    for p in engine.bootstrap_samples().unwrap() {
        let y = score_observation(&srv.observe(&p)).value;
        engine.record(p, y);
    }
    let bootstrap_best = engine.best().unwrap().1;
    for _ in 0..15 {
        let s = engine.suggest(None).unwrap();
        let y = score_observation(&srv.observe(&s.partition)).value;
        engine.record(s.partition, y);
    }
    assert!(engine.best().unwrap().1 >= bootstrap_best);
}

#[test]
fn controller_ejects_individually_infeasible_jobs() {
    // Nine loaded LC jobs: per-job maximum extremum is 2 cores, which the
    // heavyweights cannot live with.
    let mix: Vec<JobSpec> = [
        W::ImgDnn,
        W::Masstree,
        W::Memcached,
        W::Specjbb,
        W::Xapian,
        W::ImgDnn,
        W::Masstree,
        W::Specjbb,
        W::Xapian,
    ]
    .iter()
    .map(|&w| JobSpec::latency_critical(w, 1.0))
    .collect();
    let mut srv = server(mix, 13);
    let outcome = CliteController::default().run(&mut srv).unwrap();
    assert!(!outcome.infeasible_jobs.is_empty());
    assert_eq!(outcome.samples_used(), 10, "ejection right after bootstrap");
}

#[test]
fn enforcement_overhead_accumulates_only_on_changes() {
    let mut srv = server(
        vec![JobSpec::latency_critical(W::Memcached, 0.2), JobSpec::background(W::Freqmine)],
        17,
    );
    let p = Partition::equal_share(srv.catalog(), 2).unwrap();
    srv.observe(&p);
    let after_first = srv.enforcement_overhead_ms();
    srv.observe(&p);
    assert_eq!(srv.enforcement_overhead_ms(), after_first, "idempotent re-apply is free");
    let q = p.transfer(ResourceKind::LlcWays, 0, 1, 2).unwrap();
    srv.observe(&q);
    assert!(srv.enforcement_overhead_ms() > after_first);
}

#[test]
fn full_run_is_reproducible_end_to_end() {
    let run = || {
        let mut srv = server(
            vec![
                JobSpec::latency_critical(W::Memcached, 0.3),
                JobSpec::latency_critical(W::Masstree, 0.3),
                JobSpec::background(W::Fluidanimate),
            ],
            23,
        );
        CliteController::new(CliteConfig::default().with_seed(23)).run(&mut srv).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_partition, b.best_partition);
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(a.samples_used(), b.samples_used());
}

#[test]
fn heracles_is_limited_to_one_lc_job() {
    // Heracles' documented limitation drives the paper's Fig. 7a: with two
    // loaded LC jobs it satisfies only its protected one.
    let mix = Mix::new(&[(W::Memcached, 0.7), (W::Masstree, 0.7)], &[W::Blackscholes]);
    let outcome = run_policy(PolicyKind::Heracles, &mix, 29);
    let last = outcome.samples.last().unwrap();
    assert_eq!(last.observation.jobs[0].qos_met, Some(true), "protected job satisfied");
    assert!(!outcome.qos_met, "the second LC job is not Heracles' problem");
}
