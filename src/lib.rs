//! # clite-repro — facade crate
//!
//! Reproduction of **CLITE: Efficient and QoS-Aware Co-location of Multiple
//! Latency-Critical Jobs for Warehouse Scale Computers** (Patel & Tiwari,
//! HPCA 2020) as a Rust workspace. This crate re-exports the workspace's
//! member crates so examples and integration tests can use one import root:
//!
//! * [`par`] — the shared deterministic worker pool;
//! * [`sim`] — the simulated co-location server substrate;
//! * [`gp`] — Gaussian-process regression;
//! * [`bo`] — the Bayesian-optimization engine;
//! * [`core`] — the CLITE controller (score function, search loop,
//!   adaptation);
//! * [`policies`] — PARTIES, Heracles, RAND+, GENETIC, ORACLE baselines;
//! * [`cluster`] — warehouse-scale placement built on the controller;
//! * [`learn`] — trained placement scoring for fleet admission.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

pub use clite as core;
pub use clite_bench as bench;
pub use clite_bo as bo;
pub use clite_cluster as cluster;
pub use clite_gp as gp;
pub use clite_learn as learn;
pub use clite_par as par;
pub use clite_policies as policies;
pub use clite_sim as sim;
